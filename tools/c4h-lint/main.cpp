// c4h-lint — determinism & coroutine-safety static analyzer for the
// Cloud4Home tree.
//
// The simulation's whole value rests on deterministic replay: the same seed
// must reproduce a faulted run byte-for-byte (tests/test_determinism.cpp).
// Two bug classes have already bitten this codebase and are cheap to catch
// mechanically rather than by review:
//   * awaiting a temporary Task inside a loop condition or compound
//     subexpression (the GCC-12 coroutine-frame miscompile class), and
//   * iteration over unordered containers feeding simulation decisions, so
//     hash-table layout leaks into message emission order.
//
// The tool is deliberately token/line-level — no libclang dependency — so it
// builds everywhere the tree builds and runs in milliseconds over the whole
// repository. Heuristic by design: it trades exhaustiveness for zero build
// deps and near-zero false positives on this codebase's idiom.
//
// Rules:
//   R1 temporary-task-await   co_await of a temporary Task/Result call in a
//                             loop header or compound subexpression
//   R2 wall-clock/entropy ban system_clock / steady_clock / time() / rand()
//                             / std::random_device outside src/common/rng.hpp
//   R3 unordered-iteration    range-for or .begin() iteration over a
//                             declared unordered_map/unordered_set variable
//   R4 discarded-result       a call statement discarding a Result/Task
//                             return without co_await, assignment, or an
//                             annotated (void) launder
//   R5 header-hygiene         every header: #pragma once + namespace c4h
//
// Suppression: `// c4h-lint: allow(R3)` on the offending line (or alone on
// the preceding line) silences that rule there; `allow(R3,R4)` lists several.
// Exit status is non-zero iff any unsuppressed diagnostic was emitted.
//
// Usage: c4h-lint [--rules=R1,R3] [--fixable] [--exclude=substr] <paths...>
// Directory arguments are walked recursively for *.hpp/*.h/*.cpp/*.cc;
// directories named lint_fixtures, analyze_fixtures, build*, or .git are
// skipped (explicit file arguments are always scanned).

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace c4h::lint {

// ---------------------------------------------------------------------------
// Source model

struct Token {
  enum class Kind { ident, number, punct };
  Kind kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;          // verbatim, for R5 / context
  std::vector<Token> toks;                     // comments/strings/pp stripped
  std::map<int, std::set<std::string>> allow;  // line -> suppressed rules
  // Allows found on comment-only lines; they attach to the next code line
  // once tokenization knows where the code is (explanations may span several
  // comment lines above the statement they cover).
  std::vector<std::pair<int, std::string>> pending_allow;
  bool is_header = false;
};

struct Diagnostic {
  std::string file;
  int line;
  std::string rule;
  std::string message;
  std::string hint;
};

// Parses "c4h-lint: allow(R3,R4)" occurrences out of a comment.
static void parse_allow(const std::string& comment, int line, bool comment_only,
                        SourceFile& f) {
  const std::string tag = "c4h-lint: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    pos += tag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) return;
    std::stringstream list(comment.substr(pos, close - pos));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 rule.end());
      if (rule.empty()) continue;
      f.allow[line].insert(rule);
      // A comment on its own line covers the next line of code too (resolved
      // after tokenization, so multi-line comment blocks work).
      if (comment_only) f.pending_allow.emplace_back(line, rule);
    }
    pos = close;
  }
}

static bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Strips comments, string/char literals, and preprocessor directives while
// tokenizing; records suppression comments as it goes.
static void tokenize(SourceFile& f) {
  enum class St { code, line_comment, block_comment, str, chr, raw_str, pp };
  St st = St::code;
  std::string comment, raw_delim;
  bool line_has_code = false;
  int comment_line = 0;

  auto flush_comment = [&](int line) {
    if (!comment.empty()) parse_allow(comment, line, !line_has_code, f);
    comment.clear();
  };

  for (int ln = 0; ln < static_cast<int>(f.raw_lines.size()); ++ln) {
    const std::string& s = f.raw_lines[ln];
    const int line = ln + 1;
    if (st == St::line_comment) {  // terminated by the newline we just crossed
      flush_comment(comment_line);
      st = St::code;
    }
    if (st == St::pp) {  // previous directive line ended with a backslash
      if (s.empty() || s.back() != '\\') st = St::code;
      continue;
    }
    if (st == St::code) {
      line_has_code = false;
      // Preprocessor directive: skip the whole (possibly continued) line.
      std::size_t first = s.find_first_not_of(" \t");
      if (first != std::string::npos && s[first] == '#') {
        if (!s.empty() && s.back() == '\\') st = St::pp;
        continue;
      }
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      const char n = i + 1 < s.size() ? s[i + 1] : '\0';
      switch (st) {
        case St::pp:
          break;
        case St::line_comment:
          comment += c;
          break;
        case St::block_comment:
          if (c == '*' && n == '/') {
            ++i;
            flush_comment(comment_line);
            st = St::code;
          } else {
            comment += c;
          }
          break;
        case St::str:
          if (c == '\\') ++i;
          else if (c == '"') st = St::code;
          break;
        case St::chr:
          if (c == '\\') ++i;
          else if (c == '\'') st = St::code;
          break;
        case St::raw_str:
          if (c == ')' && s.compare(i + 1, raw_delim.size() + 1, raw_delim + "\"") == 0) {
            i += raw_delim.size() + 1;
            st = St::code;
          }
          break;
        case St::code: {
          if (c == '/' && n == '/') {
            st = St::line_comment;
            comment_line = line;
            ++i;
            break;
          }
          if (c == '/' && n == '*') {
            st = St::block_comment;
            comment_line = line;
            ++i;
            break;
          }
          if (c == 'R' && n == '"' &&
              (i == 0 || !ident_char(s[i - 1]))) {  // raw string literal
            std::size_t open = s.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = s.substr(i + 2, open - (i + 2));
              st = St::raw_str;
              i = open;
              line_has_code = true;
              break;
            }
          }
          if (c == '"') {
            st = St::str;
            line_has_code = true;
            break;
          }
          if (c == '\'' && !(ident_char(c) && i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1])))) {
            // skip digit separators like 1'000'000
            if (i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1])) && ident_char(n)) break;
            st = St::chr;
            line_has_code = true;
            break;
          }
          if (std::isspace(static_cast<unsigned char>(c))) break;
          line_has_code = true;
          if (ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size() && ident_char(s[j])) ++j;
            f.toks.push_back({Token::Kind::ident, s.substr(i, j - i), line});
            i = j - 1;
            break;
          }
          if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size() && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
            f.toks.push_back({Token::Kind::number, s.substr(i, j - i), line});
            i = j - 1;
            break;
          }
          // Multi-char operators we care about keeping whole.
          static const char* two[] = {"::", "->", "&&", "||", "==", "!=", "<=", ">="};
          std::string t(1, c);
          for (const char* op : two) {
            if (c == op[0] && n == op[1]) {
              t = op;
              ++i;
              break;
            }
          }
          f.toks.push_back({Token::Kind::punct, t, line});
          break;
        }
      }
    }
    if (st == St::line_comment) {
      // comment runs to end of line; flushed at the top of the next iteration
      continue;
    }
    if (st == St::str || st == St::chr) st = St::code;  // unterminated: resync
  }
  flush_comment(comment_line);

  // Attach comment-only allows to the next line that actually holds code, so
  // an explanation spanning several comment lines still covers its statement.
  std::set<int> code_lines;
  for (const Token& t : f.toks) code_lines.insert(t.line);
  for (const auto& [line, rule] : f.pending_allow) {
    const auto next = code_lines.upper_bound(line);
    if (next != code_lines.end()) f.allow[*next].insert(rule);
  }
}

// ---------------------------------------------------------------------------
// Cross-file declaration collection

struct DeclIndex {
  std::set<std::string> unordered_names;  // vars/members of unordered type
  std::set<std::string> result_fns;       // functions returning Result<>/Task<>
};

// Skips a balanced <...> starting at toks[i] == "<"; returns index one past
// the closing ">", or npos if unbalanced / implausible.
static std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return std::string::npos;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{") {
      return std::string::npos;  // not a template argument list after all
    }
  }
  return std::string::npos;
}

static void collect_decls(const SourceFile& f, DeclIndex& ix) {
  const auto& toks = f.toks;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "unordered_map" || t == "unordered_set") {
      std::size_t j = skip_angles(toks, i + 1);
      if (j == std::string::npos) continue;
      while (j < toks.size() && (toks[j].text == "*" || toks[j].text == "&")) ++j;
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::ident) {
        const std::string& nxt = toks[j + 1].text;
        if (nxt == ";" || nxt == "=" || nxt == "{" || nxt == ",") {
          ix.unordered_names.insert(toks[j].text);
        }
      }
    } else if (t == "Result" || t == "Task") {
      std::size_t j = skip_angles(toks, i + 1);
      if (j == std::string::npos) {
        // Task<> with defaulted argument: tokens are "Task" "<" ">".
        if (i + 2 < toks.size() && toks[i + 1].text == "<" && toks[i + 2].text == ">") {
          j = i + 3;
        } else {
          continue;
        }
      }
      if (j + 1 < toks.size() && toks[j].kind == Token::Kind::ident &&
          toks[j + 1].text == "(") {
        ix.result_fns.insert(toks[j].text);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rules

class Analyzer {
 public:
  Analyzer(const DeclIndex& ix, std::vector<Diagnostic>& out) : ix_(ix), out_(out) {}

  void analyze(const SourceFile& f, const std::set<std::string>& enabled) {
    if (on(enabled, "R1")) rule_r1(f);
    if (on(enabled, "R2")) rule_r2(f);
    if (on(enabled, "R3")) rule_r3(f);
    if (on(enabled, "R4")) rule_r4(f);
    if (on(enabled, "R5") && f.is_header) rule_r5(f);
  }

 private:
  static bool on(const std::set<std::string>& enabled, const char* rule) {
    return enabled.empty() || enabled.count(rule) > 0;
  }

  void emit(const SourceFile& f, int line, const char* rule, std::string msg,
            std::string hint) {
    const auto it = f.allow.find(line);
    if (it != f.allow.end() && it->second.count(rule) > 0) return;
    out_.push_back({f.path, line, rule, std::move(msg), std::move(hint)});
  }

  static bool is_keyword(const std::string& t) {
    static const std::set<std::string> kw = {
        "if",     "else",   "while",   "for",      "do",      "switch", "case",
        "return", "co_return", "co_await", "co_yield", "break", "continue",
        "new",    "delete", "throw",   "goto",     "using",   "typedef", "auto",
        "void",   "const",  "static",  "constexpr", "template", "class", "struct",
        "enum",   "namespace", "public", "private", "protected", "friend",
        "default", "operator", "sizeof", "this", "try", "catch", "inline",
        "explicit", "virtual", "override", "final", "extern", "mutable"};
    return kw.count(t) > 0;
  }

  // Finds the index of the ")" matching toks[i] == "(".
  static std::size_t match_paren(const std::vector<Token>& toks, std::size_t i) {
    int depth = 0;
    for (; i < toks.size(); ++i) {
      if (toks[i].text == "(") ++depth;
      else if (toks[i].text == ")" && --depth == 0) return i;
    }
    return std::string::npos;
  }

  // R1: co_await of a temporary (a call expression) inside a loop header or
  // combined with an operator into a compound subexpression. GCC 12's
  // coroutine frame handling has miscompiled exactly this shape, and even on
  // correct compilers the temporary's lifetime interacts subtly with the
  // suspension point.
  void rule_r1(const SourceFile& f) {
    static const std::set<std::string> ops = {"&&", "||", "==", "!=", "<",  ">",
                                              "<=", ">=", "+",  "-",  "*",  "/",
                                              "%",  "!",  "?"};
    const auto& toks = f.toks;
    std::vector<char> paren_ctx;  // 'L' loop header, 'o' other
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (t == "(") {
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        paren_ctx.push_back(prev == "while" || prev == "for" ? 'L' : 'o');
        continue;
      }
      if (t == ")") {
        if (!paren_ctx.empty()) paren_ctx.pop_back();
        continue;
      }
      if (t != "co_await") continue;

      // Parse the awaited expression: ident chain, optionally a call.
      std::size_t j = i + 1;
      bool saw_ident = false;
      while (j < toks.size() &&
             (toks[j].kind == Token::Kind::ident || toks[j].text == "::" ||
              toks[j].text == "." || toks[j].text == "->")) {
        saw_ident = toks[j].kind == Token::Kind::ident || saw_ident;
        ++j;
      }
      if (!saw_ident || j >= toks.size() || toks[j].text != "(") continue;  // named awaitable
      const std::size_t close = match_paren(toks, j);
      if (close == std::string::npos) continue;

      const bool in_loop_header =
          std::find(paren_ctx.begin(), paren_ctx.end(), 'L') != paren_ctx.end();
      const std::string before = i > 0 ? toks[i - 1].text : "";
      const std::string after = close + 1 < toks.size() ? toks[close + 1].text : "";
      if (in_loop_header) {
        emit(f, toks[i].line, "R1",
             "co_await of a temporary task inside a loop header",
             "hoist the co_await into the loop body and bind the result to a "
             "named variable");
      } else if (ops.count(before) > 0 || ops.count(after) > 0) {
        emit(f, toks[i].line, "R1",
             "co_await of a temporary task inside a compound subexpression",
             "bind the awaited value to a named variable first, then combine");
      }
    }
  }

  // R2: wall-clock and ambient-entropy sources break seed-reproducibility;
  // all time comes from Simulation::now() and all randomness from c4h::Rng.
  void rule_r2(const SourceFile& f) {
    if (f.path.size() >= 14 &&
        f.path.compare(f.path.size() - 14, 14, "common/rng.hpp") == 0) {
      return;  // the one sanctioned randomness implementation
    }
    static const std::set<std::string> always = {
        "system_clock", "steady_clock", "high_resolution_clock", "random_device",
        "mt19937", "mt19937_64", "default_random_engine", "gettimeofday"};
    static const std::set<std::string> call_only = {"rand", "srand", "time", "clock"};
    const auto& toks = f.toks;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::ident) continue;
      const std::string& t = toks[i].text;
      if (always.count(t) > 0) {
        emit(f, toks[i].line, "R2",
             "wall-clock/entropy source '" + t + "' breaks deterministic replay",
             "use Simulation::now() for time and c4h::Rng for randomness");
        continue;
      }
      if (call_only.count(t) > 0 && i + 1 < toks.size() && toks[i + 1].text == "(") {
        const std::string prev = i > 0 ? toks[i - 1].text : "";
        if (prev == "." || prev == "->") continue;  // member named e.g. time()
        emit(f, toks[i].line, "R2",
             "call to '" + t + "()' is nondeterministic across runs",
             "use Simulation::now() for time and c4h::Rng for randomness");
      }
    }
  }

  // R3: hash-table iteration order is an implementation detail; when it feeds
  // message emission or placement decisions, the replay is only stable by
  // accident. Iterate a sorted key list, use an ordered container, or
  // annotate a provably order-insensitive loop.
  void rule_r3(const SourceFile& f) {
    const auto& toks = f.toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      // Iterator form: <unordered-name> . begin (
      if (toks[i].kind == Token::Kind::ident &&
          ix_.unordered_names.count(toks[i].text) > 0 && toks[i + 1].text == "." &&
          i + 2 < toks.size() && toks[i + 2].text == "begin") {
        emit(f, toks[i].line, "R3",
             "iterator loop over unordered container '" + toks[i].text + "'",
             "iterate a sorted snapshot of the keys, switch to an ordered "
             "container, or annotate with // c4h-lint: allow(R3)");
        continue;
      }
      // Range-for form: for ( ... : <range-expr> )
      if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
      const std::size_t close = match_paren(toks, i + 1);
      if (close == std::string::npos) continue;
      // Find the range-for ':' at paren depth 1.
      int depth = 0;
      std::size_t colon = std::string::npos;
      for (std::size_t j = i + 1; j <= close; ++j) {
        if (toks[j].text == "(") ++depth;
        else if (toks[j].text == ")") --depth;
        else if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      // Iterating a sorted snapshot (src/common/ordered.hpp) is the
      // sanctioned remedy; the hazard is traversing the table itself.
      bool sanctioned = false;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].text == "sorted_keys") {
          sanctioned = true;
          break;
        }
      }
      if (sanctioned) continue;
      // Last identifier of the range expression, unless it is a call.
      std::size_t last = std::string::npos;
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind == Token::Kind::ident &&
            (j + 1 >= close || toks[j + 1].text != "(")) {
          last = j;
        }
      }
      if (last == std::string::npos) continue;
      if (ix_.unordered_names.count(toks[last].text) == 0) continue;
      emit(f, toks[last].line, "R3",
           "range-for over unordered container '" + toks[last].text + "'",
           "iterate a sorted snapshot of the keys, switch to an ordered "
           "container, or annotate with // c4h-lint: allow(R3)");
    }
  }

  // R4: a bare `f(...);` statement where f returns Task<> silently does
  // nothing (lazy coroutines run only when awaited or spawned); where it
  // returns Result<> it swallows an error. Both must be awaited, assigned,
  // or deliberately laundered with (void) plus an allow annotation.
  void rule_r4(const SourceFile& f) {
    // Names that collide with STL members whose discard is idiomatic.
    static const std::set<std::string> ambiguous = {
        "begin", "end",  "erase", "insert", "emplace", "find",    "count",
        "at",    "clear", "size",  "empty",  "write",   "read",    "push_back",
        "reserve", "swap"};
    const auto& toks = f.toks;
    bool stmt_start = true;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const std::string& t = toks[i].text;
      if (!stmt_start) {
        stmt_start = (t == ";" || t == "{" || t == "}");
        continue;
      }
      if (t == ";" || t == "{" || t == "}") continue;  // still at a boundary
      stmt_start = false;

      // Optional (void) launder prefix.
      std::size_t j = i;
      bool laundered = false;
      if (toks[j].text == "(" && j + 2 < toks.size() && toks[j + 1].text == "void" &&
          toks[j + 2].text == ")") {
        laundered = true;
        j += 3;
        if (j < toks.size() && toks[j].text == "co_await") continue;  // awaited: fine
      }

      // Qualified call chain ending in <name> ( ... ) ;
      if (j >= toks.size() || toks[j].kind != Token::Kind::ident ||
          is_keyword(toks[j].text)) {
        continue;
      }
      std::size_t name = std::string::npos;
      while (j < toks.size()) {
        if (toks[j].kind == Token::Kind::ident && !is_keyword(toks[j].text)) {
          name = j;
          ++j;
        } else {
          break;
        }
        if (j < toks.size() &&
            (toks[j].text == "::" || toks[j].text == "." || toks[j].text == "->")) {
          ++j;
          continue;
        }
        break;
      }
      if (name == std::string::npos || j >= toks.size() || toks[j].text != "(") continue;
      const std::string& callee = toks[name].text;
      if (ix_.result_fns.count(callee) == 0 || ambiguous.count(callee) > 0) continue;
      const std::size_t close = match_paren(toks, j);
      if (close == std::string::npos || close + 1 >= toks.size()) continue;
      if (toks[close + 1].text != ";") continue;  // value is consumed somehow
      if (laundered) {
        emit(f, toks[name].line, "R4",
             "(void)-laundered Result/Task call '" + callee +
                 "' lacks an allow annotation",
             "append // c4h-lint: allow(R4) if the discard is intentional");
      } else {
        emit(f, toks[name].line, "R4",
             "call to '" + callee + "' discards its Result/Task return value",
             "co_await / Simulation::spawn it, assign it, or launder with "
             "(void) plus // c4h-lint: allow(R4)");
      }
    }
  }

  // R5: header hygiene — include-guard pragma and the project namespace.
  void rule_r5(const SourceFile& f) {
    // File-level checks honour a file-level suppression anywhere in the file.
    for (const auto& [line, rules] : f.allow) {
      if (rules.count("R5") > 0) return;
    }
    bool pragma_once = false;
    for (const std::string& s : f.raw_lines) {
      if (s.find("#pragma once") != std::string::npos) {
        pragma_once = true;
        break;
      }
    }
    if (!pragma_once) {
      out_.push_back({f.path, 1, "R5", "header is missing #pragma once",
                      "add #pragma once below the file comment"});
    }
    bool ns = false;
    for (std::size_t i = 0; i + 1 < f.toks.size(); ++i) {
      if (f.toks[i].text == "namespace" && f.toks[i + 1].text == "c4h") {
        ns = true;
        break;
      }
    }
    if (!ns) {
      out_.push_back({f.path, 1, "R5",
                      "header does not declare anything in namespace c4h",
                      "wrap declarations in namespace c4h (or c4h::<area>)"});
    }
  }

  const DeclIndex& ix_;
  std::vector<Diagnostic>& out_;
};

// ---------------------------------------------------------------------------
// Driver

struct Options {
  std::set<std::string> rules;     // empty = all
  std::vector<std::string> excludes;
  bool fixable = false;
  std::vector<std::string> paths;
};

static bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() && s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

static bool source_like(const std::filesystem::path& p) {
  const std::string e = p.extension().string();
  return e == ".hpp" || e == ".h" || e == ".cpp" || e == ".cc";
}

static bool skip_dir(const std::filesystem::path& p) {
  const std::string n = p.filename().string();
  return n == ".git" || n == "lint_fixtures" || n == "analyze_fixtures" ||
         n.rfind("build", 0) == 0;
}

static std::vector<std::string> expand_paths(const Options& opt) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& arg : opt.paths) {
    fs::path p{arg};
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory() && skip_dir(it->path())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && source_like(it->path())) {
          files.push_back(it->path().string());
        }
      }
    } else {
      files.push_back(arg);  // explicit files are always scanned
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  const auto excluded = [&](const std::string& f) {
    for (const std::string& e : opt.excludes) {
      if (f.find(e) != std::string::npos) return true;
    }
    return false;
  };
  files.erase(std::remove_if(files.begin(), files.end(), excluded), files.end());
  return files;
}

static bool load(const std::string& path, SourceFile& f) {
  std::ifstream in(path);
  if (!in) return false;
  f.path = path;
  f.is_header = has_suffix(path, ".hpp") || has_suffix(path, ".h");
  std::string line;
  while (std::getline(in, line)) f.raw_lines.push_back(line);
  tokenize(f);
  return true;
}

static const char* fix_note(const std::string& rule) {
  if (rule == "R1") return "mechanical: hoist the await into a named local";
  if (rule == "R2") return "mechanical: thread Simulation/Rng through the call site";
  if (rule == "R3") return "mechanical: sort keys first, or annotate allow(R3)";
  if (rule == "R4") return "mechanical: (void)-launder + allow(R4), or handle the Result";
  if (rule == "R5") return "mechanical: insert #pragma once / namespace c4h";
  return "";
}

static int run(const Options& opt) {
  const std::vector<std::string> files = expand_paths(opt);
  if (files.empty()) {
    std::fprintf(stderr, "c4h-lint: no source files found\n");
    return 2;
  }

  std::vector<SourceFile> sources;
  sources.reserve(files.size());
  for (const std::string& p : files) {
    SourceFile f;
    if (!load(p, f)) {
      std::fprintf(stderr, "c4h-lint: cannot read %s\n", p.c_str());
      return 2;
    }
    sources.push_back(std::move(f));
  }

  // Pass 1: declarations from every file, so member types declared in headers
  // inform loops written in .cpp files.
  DeclIndex ix;
  for (const SourceFile& f : sources) collect_decls(f, ix);

  // Pass 2: diagnostics.
  std::vector<Diagnostic> diags;
  Analyzer an(ix, diags);
  for (const SourceFile& f : sources) an.analyze(f, opt.rules);

  std::sort(diags.begin(), diags.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const Diagnostic& d : diags) {
    std::printf("%s:%d: [%s] %s (hint: %s)\n", d.file.c_str(), d.line, d.rule.c_str(),
                d.message.c_str(), d.hint.c_str());
  }

  if (opt.fixable) {
    std::map<std::string, int> per_rule;
    for (const Diagnostic& d : diags) ++per_rule[d.rule];
    std::printf("-- fixable summary --\n");
    for (const auto& [rule, n] : per_rule) {
      std::printf("%s: %d diagnostic(s) — %s\n", rule.c_str(), n, fix_note(rule));
    }
  }

  std::printf("c4h-lint: %zu file(s) scanned, %zu unsuppressed diagnostic(s)\n",
              files.size(), diags.size());
  return diags.empty() ? 0 : 1;
}

}  // namespace c4h::lint

int main(int argc, char** argv) {
  c4h::lint::Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--fixable") {
      opt.fixable = true;
    } else if (a.rfind("--rules=", 0) == 0) {
      std::stringstream list(a.substr(8));
      std::string r;
      while (std::getline(list, r, ',')) {
        if (!r.empty()) opt.rules.insert(r);
      }
    } else if (a.rfind("--exclude=", 0) == 0) {
      opt.excludes.push_back(a.substr(10));
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: c4h-lint [--rules=R1,R2,...] [--fixable] [--exclude=substr] "
          "<paths...>\n"
          "rules: R1 temporary-task-await, R2 wall-clock/entropy ban,\n"
          "       R3 unordered-iteration hazard, R4 discarded Result/Task,\n"
          "       R5 header hygiene\n"
          "suppress a line with: // c4h-lint: allow(R3)\n");
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "c4h-lint: unknown option %s\n", a.c_str());
      return 2;
    } else {
      opt.paths.push_back(a);
    }
  }
  if (opt.paths.empty()) {
    std::fprintf(stderr, "c4h-lint: no paths given (try --help)\n");
    return 2;
  }
  return c4h::lint::run(opt);
}
