#include "tools/c4h-analyze/rules.hpp"

#include <algorithm>

namespace c4h::analyze {

namespace {

bool in_nested_lambda(const Function& fn, std::size_t tok) {
  for (const Lambda& l : fn.lambdas) {
    if (l.body_begin != 0 && tok > l.body_begin && tok < l.body_end) return true;
  }
  return false;
}

bool is_ident(const Token& t, const char* text) {
  return t.kind == Token::Kind::ident && t.text == text;
}

std::size_t stmt_end(const std::vector<Token>& toks, std::size_t i, std::size_t limit);

// ---------------------------------------------------------------------------
// Family A helpers
// ---------------------------------------------------------------------------

// True when the argument range holds a temporary: a call / braced init /
// literal at top level. `std::move(x)` is an explicit ownership handoff and
// does not count; neither do plain lvalue chains, including subscripts.
bool is_temporary_arg(const std::vector<Token>& toks, std::size_t b, std::size_t e) {
  if (b >= e) return false;
  std::size_t i = b;
  if (is_ident(toks[i], "std") && i + 1 < e && toks[i + 1].text == "::") i += 2;
  if (i < e && is_ident(toks[i], "move") && i + 1 < e && toks[i + 1].text == "(") return false;
  int bracket = 0;
  for (std::size_t k = b; k < e; ++k) {
    const Token& t = toks[k];
    if (t.text == "[") ++bracket;
    else if (t.text == "]") --bracket;
    else if (bracket == 0) {
      if (t.text == "(" || t.text == "{") return true;
      if (t.kind == Token::Kind::number || t.kind == Token::Kind::str) return true;
    }
  }
  return false;
}

// Locates every call to `spawn` / `run_task` in the body and yields the
// token range of its (single) argument.
struct SpawnSite {
  std::size_t open = 0;   // '(' of the spawn call
  std::size_t arg_b = 0;  // argument range [arg_b, arg_e)
  std::size_t arg_e = 0;
  int line = 0;
  bool detached = false;  // spawn() detaches; run_task() drives synchronously
};

std::vector<SpawnSite> spawn_sites(const std::vector<Token>& toks, const Function& fn) {
  std::vector<SpawnSite> out;
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    if (toks[i].kind != Token::Kind::ident) continue;
    if (toks[i].text != "spawn" && toks[i].text != "run_task") continue;
    if (toks[i + 1].text != "(") continue;
    const std::size_t close = match_close(toks, i + 1);
    if (close == std::string::npos || close > fn.body_end) continue;
    const auto args = split_args(toks, i + 1, close);
    if (args.size() != 1) continue;
    out.push_back({i + 1, args[0].first, args[0].second, toks[i].line,
                   toks[i].text == "spawn"});
  }
  return out;
}

// A1 — reference parameters of a spawned coroutine bound to temporaries.
// Two argument shapes are understood:
//   spawn(task_fn(args...))              — signature from the symbol index
//   spawn([](T& p, ...) -> Task<> {...}(args...))  — the tree's IIFE idiom,
//                                          signature read off the lambda
void rule_a1(const FileModel& m, const Function& fn, const SymbolIndex& index,
             std::vector<Finding>& out) {
  const auto& toks = m.file->toks;
  for (const SpawnSite& s : spawn_sites(toks, fn)) {
    if (!s.detached) continue;  // run_task() drives inside the full expression
    std::set<std::size_t> ref_pos;
    std::vector<std::pair<std::size_t, std::size_t>> call_args;
    std::string callee;

    if (toks[s.arg_b].text == "[") {
      // IIFE lambda: [caps](params) -> Task<...> { body }(call args)
      const std::size_t intro_close = match_close(toks, s.arg_b);
      if (intro_close == std::string::npos) continue;
      std::size_t j = intro_close + 1;
      if (j >= s.arg_e || toks[j].text != "(") continue;
      const std::size_t pclose = match_close(toks, j);
      if (pclose == std::string::npos) continue;
      std::size_t pos = 0;
      for (const auto& [b, e] : split_args(toks, j, pclose)) {
        const Param p = parse_param(toks, b, e);
        if (p.is_ref && !p.is_const) ref_pos.insert(pos);
        ++pos;
      }
      std::size_t body = pclose + 1;
      while (body < s.arg_e && toks[body].text != "{") ++body;
      const std::size_t bclose = body < s.arg_e ? match_close(toks, body) : std::string::npos;
      if (bclose == std::string::npos || bclose + 1 >= s.arg_e) continue;
      if (toks[bclose + 1].text != "(") continue;
      const std::size_t cclose = match_close(toks, bclose + 1);
      if (cclose == std::string::npos) continue;
      call_args = split_args(toks, bclose + 1, cclose);
      callee = "coroutine lambda";
    } else {
      // Named call: walk the qualification chain to the callee '('.
      std::size_t call_open = std::string::npos;
      for (std::size_t k = s.arg_b; k + 1 < s.arg_e; ++k) {
        if (toks[k].kind == Token::Kind::ident && toks[k + 1].text == "(") {
          call_open = k + 1;
          callee = toks[k].text;
          break;
        }
        if (toks[k].kind != Token::Kind::ident && toks[k].text != "::" &&
            toks[k].text != "." && toks[k].text != "->") {
          break;
        }
      }
      if (call_open == std::string::npos) continue;
      const auto it = index.fns.find(callee);
      if (it == index.fns.end() || !it->second.task_like) continue;
      ref_pos = it->second.ref_params;
      const std::size_t cclose = match_close(toks, call_open);
      if (cclose == std::string::npos) continue;
      call_args = split_args(toks, call_open, cclose);
    }

    for (std::size_t pos : ref_pos) {
      if (pos >= call_args.size()) continue;
      const auto& [b, e] = call_args[pos];
      if (!is_temporary_arg(toks, b, e)) continue;
      const int line = toks[b].line;
      if (allowed(*m.file, line, "A1")) continue;
      out.push_back({m.file->path, line, "A1", fn.qual,
                     "temporary bound to reference parameter " + std::to_string(pos + 1) +
                         " of spawned " + callee +
                         "; the frame suspends and the temporary dies at the full "
                         "expression's end"});
    }
  }
}

// A2 — a capturing coroutine lambda handed to spawn(). Captures live in the
// closure object — a temporary that dies at the end of the spawn statement —
// while the detached frame resumes later, so every capture is dangling by
// first resume. Capturing lambdas driven synchronously (run(sim, ...),
// run_task(...)) or named locals awaited in-frame are fine: the closure
// outlives every resumption there.
void rule_a2(const FileModel& m, const Function& fn, std::vector<Finding>& out) {
  const auto& toks = m.file->toks;
  const auto sites = spawn_sites(toks, fn);
  for (const Lambda& l : fn.lambdas) {
    if (!l.is_coroutine || !l.has_captures) continue;
    const bool in_spawn = std::any_of(sites.begin(), sites.end(), [&](const SpawnSite& s) {
      return s.detached && l.intro >= s.arg_b && l.intro < s.arg_e;
    });
    if (!in_spawn) continue;
    if (allowed(*m.file, l.line, "A2")) continue;
    std::string what = l.captures_this ? "`this`" : l.captures_ref ? "by-reference" : "by-value";
    out.push_back({m.file->path, l.line, "A2", fn.qual,
                   "coroutine lambda with " + what +
                       " captures; captures live in the closure object, which dies "
                       "before the frame first resumes — pass state as parameters "
                       "instead"});
  }
}

// True when the brace block (open, close) ends in an unconditional exit
// (co_return / return / throw), so code after the block is unreachable from
// anything inside it.
bool block_exits(const std::vector<Token>& toks, std::size_t open, std::size_t close) {
  std::size_t stmt_begin = open + 1;
  int depth = 0;
  for (std::size_t k = open + 1; k < close; ++k) {
    const std::string& t = toks[k].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]") --depth;
    else if (t == "}") {
      --depth;
      // A '}' closing a nested statement block is followed by a fresh
      // statement; one closing a braced init is followed by ';' , ')' etc.
      if (depth == 0 && k + 1 < close && toks[k + 1].kind == Token::Kind::ident) {
        stmt_begin = k + 1;
      }
    } else if (t == ";" && depth == 0 && k + 1 < close) {
      stmt_begin = k + 1;
    }
  }
  const std::string& first = toks[stmt_begin].text;
  return first == "co_return" || first == "return" || first == "throw";
}

// A3 — iterator obtained before a co_await and used after it without being
// re-acquired. Another coroutine can mutate the container while this frame is
// suspended, invalidating the iterator.
//
// Path-insensitivity is softened in two ways: an await only threatens uses
// past the end of its own statement (arguments of the awaited call are
// evaluated before the suspension), and an await inside an early-exit block
// cannot be crossed by any use after that block.
void rule_a3(const FileModel& m, const Function& fn, std::vector<Finding>& out) {
  if (fn.awaits.empty()) return;
  const auto& toks = m.file->toks;

  struct AwaitInfo {
    std::size_t tok, stmt_end, limit;  // limit: first token an exit makes unreachable
  };
  std::vector<AwaitInfo> awaits;
  {
    std::vector<std::size_t> opens;  // enclosing '{' stack, innermost last
    std::size_t next_await = 0;
    for (std::size_t k = fn.body_begin; k <= fn.body_end; ++k) {
      if (toks[k].text == "{") opens.push_back(k);
      else if (toks[k].text == "}" && !opens.empty()) opens.pop_back();
      if (next_await < fn.awaits.size() && fn.awaits[next_await] == k) {
        AwaitInfo info{k, stmt_end(toks, k, fn.body_end), fn.body_end};
        for (std::size_t d = opens.size(); d-- > 1;) {  // skip the body itself
          const std::size_t close = match_close(toks, opens[d]);
          if (close != std::string::npos && block_exits(toks, opens[d], close)) {
            info.limit = close;
            break;
          }
        }
        awaits.push_back(info);
        ++next_await;
      }
    }
  }

  for (const Decl& d : fn.decls) {
    if (!d.iterator_like || d.name.empty()) continue;
    std::size_t anchor = d.init_end != 0 ? d.init_end : d.name_tok;
    for (std::size_t o = anchor + 1; o < fn.body_end; ++o) {
      if (toks[o].kind != Token::Kind::ident || toks[o].text != d.name) continue;
      if (in_nested_lambda(fn, o)) continue;
      const bool rebind = o + 1 < fn.body_end && toks[o + 1].text == "=";
      if (rebind) {
        anchor = o;
        continue;
      }
      const bool crossed = std::any_of(awaits.begin(), awaits.end(), [&](const AwaitInfo& a) {
        return a.tok > anchor && a.tok < o && o > a.stmt_end && o < a.limit;
      });
      if (!crossed) continue;
      const int line = toks[o].line;
      if (!allowed(*m.file, line, "A3")) {
        std::string src = d.container.empty() ? "a container" : "'" + d.container + "'";
        out.push_back({m.file->path, line, "A3", fn.qual,
                       "iterator '" + d.name + "' into " + src +
                           " used across co_await; re-acquire it after resuming"});
      }
      break;  // one report per iterator
    }
  }
}

// A4 — a member coroutine of a function-local object passed to spawn(). The
// detached frame captures `this`, which dies when the enclosing scope exits.
void rule_a4(const FileModel& m, const Function& fn, const SymbolIndex& index,
             std::vector<Finding>& out) {
  const auto& toks = m.file->toks;
  for (const SpawnSite& s : spawn_sites(toks, fn)) {
    if (!s.detached || s.arg_e - s.arg_b < 4) continue;
    const Token& obj = toks[s.arg_b];
    const Token& sep = toks[s.arg_b + 1];
    const Token& method = toks[s.arg_b + 2];
    if (obj.kind != Token::Kind::ident || (sep.text != "." && sep.text != "->")) continue;
    if (method.kind != Token::Kind::ident || toks[s.arg_b + 3].text != "(") continue;
    const bool local = std::any_of(fn.decls.begin(), fn.decls.end(),
                                   [&](const Decl& d) { return d.name == obj.text; });
    if (!local) continue;
    const auto it = index.fns.find(method.text);
    if (it == index.fns.end() || !it->second.task_like) continue;
    if (allowed(*m.file, obj.line, "A4")) continue;
    out.push_back({m.file->path, obj.line, "A4", fn.qual,
                   "detached task '" + obj.text + "." + method.text +
                       "(...)' keeps `this` of a function-local object; the frame "
                       "outlives the scope"});
  }
}

// ---------------------------------------------------------------------------
// Family D — determinism taint
// ---------------------------------------------------------------------------

enum class TaintKind { time_entropy, pointer_identity };

const std::set<std::string>& d_sinks() {
  static const std::set<std::string> s = {"schedule", "delay",  "run_until", "send_message",
                                          "transfer", "record", "add",       "set",
                                          "emit",     "fire"};
  return s;
}

const std::set<std::string>& d2_extra_sinks() {
  static const std::set<std::string> s = {"push_back", "emplace_back", "insert", "emplace"};
  return s;
}

// True when token i begins a taint source expression for `kind`.
bool is_source(const std::vector<Token>& toks, std::size_t i, TaintKind kind) {
  const Token& t = toks[i];
  if (t.kind != Token::Kind::ident) return false;
  const Token* next = i + 1 < toks.size() ? &toks[i + 1] : nullptr;
  const Token* prev = i > 0 ? &toks[i - 1] : nullptr;
  if (kind == TaintKind::time_entropy) {
    static const std::set<std::string> any_use = {
        "system_clock", "steady_clock", "high_resolution_clock", "random_device",
        "mt19937",      "mt19937_64",   "gettimeofday",          "getenv"};
    if (any_use.count(t.text) > 0) return true;
    static const std::set<std::string> call_only = {"rand", "srand", "time", "clock"};
    if (call_only.count(t.text) > 0 && next != nullptr && next->text == "(") {
      // obj.time() is a member call, not the C library; std::time( is.
      return prev == nullptr || (prev->text != "." && prev->text != "->");
    }
    return false;
  }
  // pointer identity
  if (t.text == "reinterpret_cast" && next != nullptr && next->text == "<") {
    static const std::set<std::string> int_types = {"uintptr_t", "intptr_t",  "size_t",
                                                    "uint64_t",  "uint32_t",  "int64_t",
                                                    "ptrdiff_t"};
    const std::size_t close = skip_angles(toks, i + 1);
    if (close == std::string::npos) return false;
    for (std::size_t k = i + 2; k + 1 < close; ++k) {
      if (int_types.count(toks[k].text) > 0) return true;
    }
    return false;
  }
  if (t.text == "hash" && next != nullptr && next->text == "<") {
    const std::size_t close = skip_angles(toks, i + 1);
    if (close == std::string::npos) return false;
    for (std::size_t k = i + 2; k + 1 < close; ++k) {
      if (toks[k].text == "*") return true;
    }
    return false;
  }
  return false;
}

const std::set<std::string>& tainted_fns_for(const SymbolIndex& index, TaintKind kind) {
  return kind == TaintKind::time_entropy ? index.tainted_fns_time : index.tainted_fns_ptr;
}

bool range_tainted(const std::vector<Token>& toks, std::size_t b, std::size_t e,
                   const std::set<std::string>& vars, const SymbolIndex& index,
                   TaintKind kind) {
  for (std::size_t i = b; i < e; ++i) {
    if (is_source(toks, i, kind)) return true;
    if (toks[i].kind != Token::Kind::ident) continue;
    if (vars.count(toks[i].text) > 0) return true;
    if (i + 1 < e && toks[i + 1].text == "(" &&
        tainted_fns_for(index, kind).count(toks[i].text) > 0) {
      return true;
    }
  }
  return false;
}

std::size_t stmt_end(const std::vector<Token>& toks, std::size_t i, std::size_t limit) {
  int depth = 0;
  for (; i < limit; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[") ++depth;
    else if (t == ")" || t == "}" || t == "]") {
      if (depth == 0) return i;
      --depth;
    } else if (t == ";" && depth == 0) {
      return i;
    }
  }
  return limit;
}

// Computes the set of tainted local names in `fn` to a per-function fixpoint.
std::set<std::string> taint_vars(const std::vector<Token>& toks, const Function& fn,
                                 const SymbolIndex& index, TaintKind kind) {
  std::set<std::string> vars;
  // Source-typed declarations taint the variable itself:
  // `std::random_device rd;` / `std::hash<T*> h;` — the source token sits in
  // the type, before the name, outside any initializer range.
  for (const Decl& d : fn.decls) {
    for (std::size_t k = d.name_tok; k-- > fn.body_begin + 1;) {
      const std::string& t = toks[k].text;
      if (t == ";" || t == "{" || t == "}" || d.name_tok - k > 10) break;
      if (is_source(toks, k, kind)) {
        vars.insert(d.name);
        break;
      }
    }
  }
  for (int pass = 0; pass < 8; ++pass) {
    bool grew = false;
    for (const Decl& d : fn.decls) {
      if (d.init_begin == 0 || vars.count(d.name) > 0) continue;
      if (range_tainted(toks, d.init_begin, d.init_end, vars, index, kind)) {
        vars.insert(d.name);
        grew = true;
      }
    }
    for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
      if (toks[i].kind != Token::Kind::ident) continue;
      const std::string& op = toks[i + 1].text;
      if (op != "=" && op != "+=" && op != "-=") continue;
      if (vars.count(toks[i].text) > 0) continue;
      const std::size_t end = stmt_end(toks, i + 2, fn.body_end);
      if (range_tainted(toks, i + 2, end, vars, index, kind)) {
        vars.insert(toks[i].text);
        grew = true;
      }
    }
    if (!grew) break;
  }
  return vars;
}

bool returns_tainted(const std::vector<Token>& toks, const Function& fn,
                     const std::set<std::string>& vars, const SymbolIndex& index,
                     TaintKind kind) {
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (toks[i].kind != Token::Kind::ident) continue;
    if (toks[i].text != "return" && toks[i].text != "co_return") continue;
    const std::size_t end = stmt_end(toks, i + 1, fn.body_end);
    if (range_tainted(toks, i + 1, end, vars, index, kind)) return true;
  }
  return false;
}

void taint_report(const FileModel& m, const Function& fn, const SymbolIndex& index,
                  TaintKind kind, std::vector<Finding>& out) {
  const auto& toks = m.file->toks;
  const char* rule = kind == TaintKind::time_entropy ? "D1" : "D2";
  const char* what = kind == TaintKind::time_entropy ? "wall-clock/entropy"
                                                     : "pointer-identity";
  const std::set<std::string> vars = taint_vars(toks, fn, index, kind);
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    if (toks[i].kind != Token::Kind::ident || toks[i + 1].text != "(") continue;
    const std::string& callee = toks[i].text;
    const bool sink = d_sinks().count(callee) > 0 ||
                      (kind == TaintKind::pointer_identity && d2_extra_sinks().count(callee) > 0);
    if (!sink) continue;
    const std::size_t close = match_close(toks, i + 1);
    if (close == std::string::npos || close > fn.body_end) continue;
    if (!range_tainted(toks, i + 2, close, vars, index, kind)) continue;
    const int line = toks[i].line;
    if (allowed(*m.file, line, rule)) continue;
    out.push_back({m.file->path, line, rule, fn.qual,
                   std::string(what) + " value reaches '" + callee +
                       "'; simulation state, schedules, and metrics must derive from "
                       "Simulation::now() / seeded Rng only"});
  }
}

// D3 — iteration over an unordered container with an order-sensitive body.
void rule_d3(const FileModel& m, const Function& fn, const SymbolIndex& index,
             std::vector<Finding>& out) {
  static const std::set<std::string> sensitive = {
      "push_back", "emplace_back", "<<",   "schedule", "delay", "send_message",
      "transfer",  "record",       "emit", "co_await", "co_yield", "fire", "resume"};
  const auto& toks = m.file->toks;
  for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
    if (!is_ident(toks[i], "for") || toks[i + 1].text != "(") continue;
    const std::size_t hclose = match_close(toks, i + 1);
    if (hclose == std::string::npos || hclose > fn.body_end) continue;
    // Range-for: find the top-level ':'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t k = i + 2; k < hclose; ++k) {
      const std::string& t = toks[k].text;
      if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
      else if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
      else if (t == ":" && depth == 0) {
        colon = k;
        break;
      }
    }
    if (colon == std::string::npos) continue;
    // An explicitly sorted view (sorted_keys(m), sorted(m), ...) is ordered
    // no matter what it wraps.
    if (colon + 2 < hclose && toks[colon + 1].kind == Token::Kind::ident &&
        toks[colon + 1].text.find("sort") != std::string::npos &&
        toks[colon + 2].text == "(") {
      continue;
    }
    bool unordered = false;
    for (std::size_t k = colon + 1; k < hclose; ++k) {
      if (toks[k].kind != Token::Kind::ident) continue;
      if (toks[k].text.rfind("unordered_", 0) == 0 ||
          index.unordered_vars.count(toks[k].text) > 0) {
        unordered = true;
        break;
      }
    }
    if (!unordered) continue;
    std::size_t body_b = hclose + 1;
    std::size_t body_e;
    if (body_b < fn.body_end && toks[body_b].text == "{") {
      body_e = match_close(toks, body_b);
      if (body_e == std::string::npos) continue;
    } else {
      body_e = stmt_end(toks, body_b, fn.body_end);
    }
    bool hit = false;
    for (std::size_t k = body_b; k < body_e && !hit; ++k) {
      hit = sensitive.count(toks[k].text) > 0;
    }
    if (!hit) continue;
    const int line = toks[i].line;
    if (allowed(*m.file, line, "D3")) continue;
    out.push_back({m.file->path, line, "D3", fn.qual,
                   "order-sensitive loop body over an unordered container; iterate a "
                   "sorted copy or restructure to a commutative reduction"});
  }
}

}  // namespace

SymbolIndex build_index(const std::vector<FileModel>& models) {
  SymbolIndex index;
  for (const FileModel& m : models) {
    for (const Function& fn : m.fns) {
      auto& info = index.fns[fn.name];
      info.task_like = info.task_like || fn.returns_task || fn.is_coroutine;
      for (std::size_t i = 0; i < fn.params.size(); ++i) {
        if (fn.params[i].is_ref && !fn.params[i].is_const) info.ref_params.insert(i);
      }
    }
    // Names declared (anywhere: locals, members, globals) with an
    // unordered_* container type.
    const auto& toks = m.file->toks;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Token::Kind::ident || toks[i].text.rfind("unordered_", 0) != 0)
        continue;
      if (toks[i + 1].text != "<") continue;
      std::size_t j = skip_angles(toks, i + 1);
      if (j == std::string::npos) continue;
      while (j < toks.size() &&
             (toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const")) {
        ++j;
      }
      if (j < toks.size() && toks[j].kind == Token::Kind::ident) {
        index.unordered_vars.insert(toks[j].text);
      }
    }
  }
  return index;
}

bool propagate_taint(const std::vector<FileModel>& models, SymbolIndex& index) {
  bool grew = false;
  for (const FileModel& m : models) {
    const auto& toks = m.file->toks;
    for (const Function& fn : m.fns) {
      if (!fn.has_body) continue;
      for (TaintKind kind : {TaintKind::time_entropy, TaintKind::pointer_identity}) {
        auto& tainted =
            kind == TaintKind::time_entropy ? index.tainted_fns_time : index.tainted_fns_ptr;
        if (tainted.count(fn.name) > 0) continue;
        const auto vars = taint_vars(toks, fn, index, kind);
        if (returns_tainted(toks, fn, vars, index, kind)) {
          tainted.insert(fn.name);
          grew = true;
        }
      }
    }
  }
  return grew;
}

std::vector<Finding> run_rules(const FileModel& m, const SymbolIndex& index,
                               const std::set<std::string>& enabled) {
  std::vector<Finding> out;
  for (const Function& fn : m.fns) {
    if (!fn.has_body) continue;
    if (enabled.count("A1") > 0) rule_a1(m, fn, index, out);
    if (enabled.count("A2") > 0) rule_a2(m, fn, out);
    if (enabled.count("A3") > 0) rule_a3(m, fn, out);
    if (enabled.count("A4") > 0) rule_a4(m, fn, index, out);
    if (enabled.count("D1") > 0) taint_report(m, fn, index, TaintKind::time_entropy, out);
    if (enabled.count("D2") > 0) taint_report(m, fn, index, TaintKind::pointer_identity, out);
    if (enabled.count("D3") > 0) rule_d3(m, fn, index, out);
  }
  return out;
}

}  // namespace c4h::analyze
