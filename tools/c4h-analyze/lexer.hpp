// c4h-analyze lexer — the token layer under the dataflow analyzer.
//
// Produces a flat token stream per file with comments, preprocessor
// directives, and literals stripped (string/char literals are kept as
// single placeholder tokens so argument-shape classification can still see
// that *something* temporary sits there). Suppression comments of the form
// `// c4h-analyze: allow(A3)` are recorded while lexing: on a line with
// code they cover that line; on a comment-only line they cover the next
// line that holds code, so a multi-line justification above a statement
// still attaches to it.
//
// Shares the philosophy (and the battle-tested literal/comment state
// machine) of tools/c4h-lint, but emits a richer stream: string tokens,
// `&&`/`->`/`::` kept whole, and per-file allow maps keyed for the
// analyzer's rule ids (A1..A4, D1..D3) instead of the linter's R1..R5.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace c4h::analyze {

struct Token {
  enum class Kind { ident, number, punct, str };
  Kind kind;
  std::string text;  // for Kind::str this is the placeholder "<str>"
  int line;
};

struct SourceFile {
  std::string path;
  std::vector<std::string> raw_lines;
  std::vector<Token> toks;
  std::map<int, std::set<std::string>> allow;  // line -> suppressed rules
  bool is_header = false;
};

/// Reads and tokenizes `path` into `f`. Returns false on IO failure.
bool load_file(const std::string& path, SourceFile& f);

/// True when the line carries a suppression for `rule`.
bool allowed(const SourceFile& f, int line, const std::string& rule);

}  // namespace c4h::analyze
