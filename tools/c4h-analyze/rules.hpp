// c4h-analyze rule passes.
//
// Two rule families run over the per-file models plus a cross-file symbol
// index:
//
//   Family A — coroutine lifetime:
//     A1  temporary bound to a reference parameter of a spawned Task
//     A2  capturing coroutine lambda (captures live in the closure object,
//         which is destroyed long before the frame first resumes)
//     A3  container iterator held across a co_await suspension point
//     A4  member coroutine of a function-local object handed to spawn()
//         (the detached frame keeps `this` after the local dies)
//
//   Family B — determinism taint (flow-sensitive, cross-function):
//     D1  wall-clock / entropy values flowing into scheduling, simulation
//         state, or metrics sinks
//     D2  pointer-identity values (reinterpret_cast to integer,
//         std::hash<T*>) flowing into the same sinks or into containers
//     D3  iteration over an unordered container whose loop body performs
//         order-sensitive work (appends, emits, schedules, suspends)
//
// Taint for D1/D2 propagates through local assignments to a per-function
// fixpoint, and across calls via the set of functions whose return value is
// tainted (computed to a global fixpoint by the driver before reporting).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/c4h-analyze/model.hpp"

namespace c4h::analyze {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // "A1".."A4", "D1".."D3"
  std::string func;  // qualified enclosing function
  std::string msg;
};

/// Per-name facts merged across every file handed to the analyzer. Overload
/// merging is deliberately conservative: a ref-parameter position recorded by
/// any overload counts for all of them.
struct SymbolIndex {
  struct FnInfo {
    bool task_like = false;            // returns Task<> and/or is a coroutine
    std::set<std::size_t> ref_params;  // positions of non-const lvalue-ref params
  };
  std::map<std::string, FnInfo> fns;        // unqualified name -> merged facts
  std::set<std::string> unordered_vars;     // names declared as unordered_{map,set,...}
  std::set<std::string> tainted_fns_time;   // return value carries D1 taint
  std::set<std::string> tainted_fns_ptr;    // return value carries D2 taint
};

/// Builds the symbol index over every model (headers included).
SymbolIndex build_index(const std::vector<FileModel>& models);

/// One global taint-propagation pass: recomputes tainted_fns_* from the
/// current index. Returns true when either set grew (caller iterates to a
/// fixpoint, which the acyclic-call-depth of real code reaches in <= 4 passes).
bool propagate_taint(const std::vector<FileModel>& models, SymbolIndex& index);

/// Runs every enabled rule over one file model. Suppressions
/// (`// c4h-analyze: allow(RULE)`) are honored here.
std::vector<Finding> run_rules(const FileModel& m, const SymbolIndex& index,
                               const std::set<std::string>& enabled);

}  // namespace c4h::analyze
