// c4h-analyze — coroutine-lifetime & determinism dataflow analyzer.
//
// Usage:
//   c4h-analyze [--rules=A1,D1,...] [--baseline=FILE] [--write-baseline=FILE]
//               [--exclude=SUBSTR]... <file-or-dir>...
//
// Exit codes: 0 clean (or fully baselined/suppressed), 1 new findings,
// 2 usage or IO error.
//
// The baseline is a JSON document (c4h-analyze-baseline-v1) keyed on
// (file, rule, function) — line numbers are deliberately absent so ordinary
// drift above a finding does not invalidate it. Entries carry a `note`
// explaining why the finding is accepted; `--write-baseline` seeds notes
// with "TODO: justify".
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/json.hpp"
#include "tools/c4h-analyze/rules.hpp"

namespace fs = std::filesystem;
using namespace c4h::analyze;

namespace {

bool skip_dir(const std::string& name) {
  return name == ".git" || name == "lint_fixtures" || name == "analyze_fixtures" ||
         name.rfind("build", 0) == 0;
}

bool source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool expand_paths(const std::vector<std::string>& inputs,
                  const std::vector<std::string>& excludes, std::vector<std::string>& out) {
  const auto excluded = [&](const std::string& path) {
    return std::any_of(excludes.begin(), excludes.end(), [&](const std::string& e) {
      return path.find(e) != std::string::npos;
    });
  };
  for (const std::string& in : inputs) {
    std::error_code ec;
    if (fs::is_directory(in, ec)) {
      auto it = fs::recursive_directory_iterator(in, ec);
      if (ec) {
        std::fprintf(stderr, "c4h-analyze: cannot walk %s: %s\n", in.c_str(),
                     ec.message().c_str());
        return false;
      }
      for (auto end = fs::end(it); it != end; it.increment(ec)) {
        if (ec) return false;
        const fs::path& p = it->path();
        if (it->is_directory() && skip_dir(p.filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && source_file(p) && !excluded(p.string())) {
          out.push_back(p.string());
        }
      }
    } else if (fs::is_regular_file(in, ec)) {
      if (!excluded(in)) out.push_back(in);
    } else {
      std::fprintf(stderr, "c4h-analyze: no such file or directory: %s\n", in.c_str());
      return false;
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

// Normalizes a path to its repo-relative suffix so baseline entries match no
// matter whether the analyzer was invoked with relative or absolute paths.
std::string repo_rel(const std::string& path) {
  static const char* roots[] = {"src/", "tests/", "bench/", "tools/", "examples/"};
  std::size_t best = std::string::npos;
  for (const char* r : roots) {
    // Last occurrence bounded by a path separator (or string start).
    std::size_t pos = path.rfind(r);
    while (pos != std::string::npos && pos != 0 && path[pos - 1] != '/') {
      pos = pos == 0 ? std::string::npos : path.rfind(r, pos - 1);
    }
    if (pos != std::string::npos && (best == std::string::npos || pos < best)) best = pos;
  }
  return best == std::string::npos ? path : path.substr(best);
}

struct BaselineEntry {
  std::string file, rule, func, note;
  bool seen = false;
};

bool load_baseline(const std::string& path, std::vector<BaselineEntry>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "c4h-analyze: cannot read baseline %s\n", path.c_str());
    return false;
  }
  std::stringstream ss;
  ss << in.rdbuf();
  auto parsed = c4h::obs::json_parse(ss.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "c4h-analyze: %s: %s\n", path.c_str(),
                 parsed.error().message.c_str());
    return false;
  }
  const c4h::obs::JsonValue& root = *parsed;
  const auto* schema = root.find("schema");
  if (schema == nullptr || schema->str != "c4h-analyze-baseline-v1") {
    std::fprintf(stderr, "c4h-analyze: %s: not a c4h-analyze-baseline-v1 file\n",
                 path.c_str());
    return false;
  }
  const auto* findings = root.find("findings");
  if (findings == nullptr) return true;
  for (const auto& f : findings->items) {
    BaselineEntry e;
    if (const auto* v = f.find("file")) e.file = v->str;
    if (const auto* v = f.find("rule")) e.rule = v->str;
    if (const auto* v = f.find("func")) e.func = v->str;
    if (const auto* v = f.find("note")) e.note = v->str;
    out.push_back(std::move(e));
  }
  return true;
}

bool write_baseline(const std::string& path, const std::vector<Finding>& findings) {
  c4h::obs::JsonWriter w;
  w.begin_object().key("schema").value("c4h-analyze-baseline-v1");
  w.key("findings").begin_array();
  for (const Finding& f : findings) {
    w.begin_object()
        .key("file").value(repo_rel(f.file))
        .key("rule").value(f.rule)
        .key("func").value(f.func)
        .key("note").value("TODO: justify")
        .end_object();
  }
  w.end_array().end_object();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "c4h-analyze: cannot write %s\n", path.c_str());
    return false;
  }
  out << w.str() << "\n";
  return out.good();
}

int usage() {
  std::fprintf(stderr,
               "usage: c4h-analyze [--rules=A1,..] [--baseline=FILE] "
               "[--write-baseline=FILE] [--exclude=SUBSTR]... <paths>...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs, excludes;
  std::string baseline_path, write_baseline_path;
  std::set<std::string> enabled = {"A1", "A2", "A3", "A4", "D1", "D2", "D3"};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--rules=", 0) == 0) {
      enabled.clear();
      std::stringstream list(arg.substr(8));
      std::string r;
      while (std::getline(list, r, ',')) {
        if (!r.empty()) enabled.insert(r);
      }
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--write-baseline=", 0) == 0) {
      write_baseline_path = arg.substr(17);
    } else if (arg.rfind("--exclude=", 0) == 0) {
      excludes.push_back(arg.substr(10));
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return usage();

  std::vector<std::string> paths;
  if (!expand_paths(inputs, excludes, paths)) return 2;

  // Lex + model every file first: the symbol index and cross-function taint
  // need the whole set before any rule can run.
  std::vector<SourceFile> files(paths.size());
  std::vector<FileModel> models;
  models.reserve(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!load_file(paths[i], files[i])) {
      std::fprintf(stderr, "c4h-analyze: cannot read %s\n", paths[i].c_str());
      return 2;
    }
    models.push_back(build_model(files[i]));
  }

  SymbolIndex index = build_index(models);
  for (int pass = 0; pass < 4 && propagate_taint(models, index); ++pass) {
  }

  std::vector<Finding> findings;
  for (const FileModel& m : models) {
    auto fs_ = run_rules(m, index, enabled);
    findings.insert(findings.end(), fs_.begin(), fs_.end());
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
  });

  if (!write_baseline_path.empty()) {
    if (!write_baseline(write_baseline_path, findings)) return 2;
    std::printf("c4h-analyze: wrote %zu finding(s) to %s\n", findings.size(),
                write_baseline_path.c_str());
    return 0;
  }

  std::vector<BaselineEntry> baseline;
  if (!baseline_path.empty() && !load_baseline(baseline_path, baseline)) return 2;

  std::size_t baselined = 0;
  std::vector<const Finding*> fresh;
  for (const Finding& f : findings) {
    const std::string rel = repo_rel(f.file);
    auto it = std::find_if(baseline.begin(), baseline.end(), [&](const BaselineEntry& e) {
      return e.file == rel && e.rule == f.rule && e.func == f.func;
    });
    if (it != baseline.end()) {
      it->seen = true;
      ++baselined;
    } else {
      fresh.push_back(&f);
    }
  }

  for (const Finding* f : fresh) {
    std::printf("%s:%d: [%s] %s (in %s)\n", f->file.c_str(), f->line, f->rule.c_str(),
                f->msg.c_str(), f->func.empty() ? "<file scope>" : f->func.c_str());
  }
  for (const BaselineEntry& e : baseline) {
    if (!e.seen) {
      std::fprintf(stderr, "c4h-analyze: warning: stale baseline entry %s [%s] %s\n",
                   e.file.c_str(), e.rule.c_str(), e.func.c_str());
    }
  }
  std::printf("c4h-analyze: %zu file(s), %zu finding(s) (%zu baselined, %zu new)\n",
              paths.size(), findings.size(), baselined, fresh.size());
  return fresh.empty() ? 0 : 1;
}
