#include "tools/c4h-analyze/model.hpp"

#include <set>

namespace c4h::analyze {

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",      "while",   "switch",    "catch",   "return",
      "co_return", "co_await", "co_yield", "new",      "delete",  "throw",
      "sizeof",   "alignof",  "decltype", "typeid",    "else",    "do",
      "constexpr", "consteval", "noexcept", "operator", "defined",
      "static_assert", "assert", "alignas", "requires"};
  return kw;
}

const std::set<std::string>& stmt_keywords() {
  static const std::set<std::string> kw = {
      "if",    "for",      "while",     "do",      "switch",  "return", "co_return",
      "break", "continue", "case",      "default", "goto",    "try",    "else",
      "using", "typedef",  "namespace", "class",   "struct",  "enum",   "template",
      "public", "private", "protected", "delete",  "throw",   "co_await", "co_yield",
      "static_assert", "friend"};
  return kw;
}

bool is_type_tok(const Token& t) {
  if (t.kind == Token::Kind::ident) return true;
  return t.text == "::" || t.text == "&" || t.text == "&&" || t.text == "*" ||
         t.text == ">" || t.text == "<";
}

// GTest-style macros whose "body" is an anonymous test function; analyzing
// them catches hazards seeded in test code too.
bool test_macro(const std::string& name) {
  return name == "TEST" || name == "TEST_F" || name == "TEST_P" || name == "TYPED_TEST";
}

}  // namespace

std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size() || toks[i].text != "<") return std::string::npos;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ";" || t == "{" || t == ")") {
      return std::string::npos;  // a comparison, not a template argument list
    }
  }
  return std::string::npos;
}

std::size_t match_close(const std::vector<Token>& toks, std::size_t i) {
  if (i >= toks.size()) return std::string::npos;
  const std::string open = toks[i].text;
  const std::string close = open == "(" ? ")" : open == "{" ? "}" : open == "[" ? "]" : "";
  if (close.empty()) return std::string::npos;
  int depth = 0;
  for (; i < toks.size(); ++i) {
    if (toks[i].text == open) ++depth;
    else if (toks[i].text == close && --depth == 0) return i;
  }
  return std::string::npos;
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& toks,
                                                            std::size_t open,
                                                            std::size_t close) {
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  std::size_t start = open + 1;
  int paren = 0, brace = 0, bracket = 0, angle = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") ++paren;
    else if (t == ")") --paren;
    else if (t == "{") ++brace;
    else if (t == "}") --brace;
    else if (t == "[") ++bracket;
    else if (t == "]") --bracket;
    else if (t == "<") ++angle;
    else if (t == ">" && angle > 0) --angle;
    else if (t == "," && paren == 0 && brace == 0 && bracket == 0 && angle == 0) {
      parts.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (start < close) parts.emplace_back(start, close);
  return parts;
}

Param parse_param(const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  Param p;
  // Ignore everything from a top-level '=' (default argument) onward.
  int depth = 0;
  std::size_t stop = end;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(" || t == "{" || t == "[" || t == "<") ++depth;
    else if (t == ")" || t == "}" || t == "]" || t == ">") --depth;
    else if (t == "=" && depth == 0) {
      stop = i;
      break;
    }
  }
  for (std::size_t i = begin; i < stop; ++i) {
    const Token& t = toks[i];
    if (t.text == "&") p.is_ref = true;
    else if (t.text == "&&") p.is_rref = true;
    else if (t.text == "*") p.is_ptr = true;
    else if (t.text == "const") p.is_const = true;
    else if (t.kind == Token::Kind::ident) p.name = t.text;  // last ident wins
  }
  return p;
}

namespace {

struct Parser {
  const SourceFile& f;
  const std::vector<Token>& toks;
  FileModel out;

  explicit Parser(const SourceFile& file) : f(file), toks(file.toks) { out.file = &file; }

  bool is_coroutine_range(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      const std::string& t = toks[i].text;
      if (t == "co_await" || t == "co_return" || t == "co_yield") return true;
    }
    return false;
  }

  bool return_type_mentions_task(std::size_t chain_begin) const {
    // Walk back from the name chain to the previous declaration boundary.
    std::size_t i = chain_begin;
    for (int steps = 0; i > 0 && steps < 24; ++steps) {
      const Token& t = toks[i - 1];
      if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ":" ||
          t.text == "(" || t.text == ",") {
        break;
      }
      if (t.text == "Task") return true;
      --i;
    }
    return false;
  }

  // Walks a constructor member-initializer list starting at toks[j] == ":".
  // Returns the index of the body "{", or npos.
  std::size_t skip_ctor_inits(std::size_t j) const {
    ++j;  // past ':'
    while (j < toks.size()) {
      // Member name (possibly qualified / templated base class).
      bool saw_name = false;
      while (j < toks.size() &&
             (toks[j].kind == Token::Kind::ident || toks[j].text == "::")) {
        saw_name = toks[j].kind == Token::Kind::ident || saw_name;
        ++j;
      }
      if (j < toks.size() && toks[j].text == "<") {
        const std::size_t k = skip_angles(toks, j);
        if (k == std::string::npos) return std::string::npos;
        j = k;
      }
      if (j >= toks.size()) return std::string::npos;
      if (toks[j].text == "{" && !saw_name) return j;  // the body
      if (toks[j].text != "(" && toks[j].text != "{") return std::string::npos;
      const std::size_t close = match_close(toks, j);
      if (close == std::string::npos) return std::string::npos;
      j = close + 1;
      if (j < toks.size() && toks[j].text == ",") {
        ++j;
        continue;
      }
      return (j < toks.size() && toks[j].text == "{") ? j : std::string::npos;
    }
    return std::string::npos;
  }

  void run() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].text != "(" || i == 0) continue;
      const Token& prev = toks[i - 1];
      if (prev.kind != Token::Kind::ident || control_keywords().count(prev.text) > 0) continue;

      // Name chain: ident (:: ident)* walking back from the '('.
      std::size_t chain_begin = i - 1;
      std::vector<std::string> parts{prev.text};
      while (chain_begin >= 2 && toks[chain_begin - 1].text == "::" &&
             toks[chain_begin - 2].kind == Token::Kind::ident) {
        chain_begin -= 2;
        parts.insert(parts.begin(), toks[chain_begin].text);
      }

      const std::size_t close = match_close(toks, i);
      if (close == std::string::npos) break;

      // Skip trailing qualifiers: const/noexcept/override/final/-> type.
      std::size_t j = close + 1;
      while (j < toks.size()) {
        const std::string& t = toks[j].text;
        if (t == "const" || t == "noexcept" || t == "override" || t == "final" ||
            t == "mutable") {
          ++j;
          if (t == "noexcept" && j < toks.size() && toks[j].text == "(") {
            const std::size_t c = match_close(toks, j);
            if (c == std::string::npos) break;
            j = c + 1;
          }
          continue;
        }
        if (t == "->") {  // trailing return type
          ++j;
          while (j < toks.size() &&
                 (toks[j].kind == Token::Kind::ident || toks[j].text == "::" ||
                  toks[j].text == "&" || toks[j].text == "*" || toks[j].text == "const")) {
            ++j;
          }
          if (j < toks.size() && toks[j].text == "<") {
            const std::size_t c = skip_angles(toks, j);
            if (c == std::string::npos) break;
            j = c;
          }
          continue;
        }
        break;
      }
      if (j >= toks.size()) continue;

      const bool two_ident_decl =
          chain_begin > 0 && is_type_tok(toks[chain_begin - 1]) &&
          control_keywords().count(toks[chain_begin - 1].text) == 0 &&
          stmt_keywords().count(toks[chain_begin - 1].text) == 0;

      std::size_t body = std::string::npos;
      if (toks[j].text == "{") {
        body = j;
      } else if (toks[j].text == ":") {
        body = skip_ctor_inits(j);
      } else if (toks[j].text == ";") {
        // Declaration without body: only trust it when a return type precedes
        // the name (otherwise `foo(a);` at statement scope is a plain call).
        if (!two_ident_decl) continue;
      } else {
        continue;
      }
      if (toks[j].text != ";" && body == std::string::npos) continue;

      Function fn;
      fn.name = parts.back();
      fn.line = prev.line;
      if (test_macro(fn.name)) {
        // TEST(Suite, Name): synthesize the qualified name from the args.
        const auto args = split_args(toks, i, close);
        std::string q;
        for (const auto& [b, e] : args) {
          for (std::size_t k = b; k < e; ++k) {
            if (toks[k].kind == Token::Kind::ident) q += toks[k].text;
          }
          q += '.';
        }
        if (!q.empty()) q.pop_back();
        fn.qual = q;
      } else {
        for (std::size_t p = 0; p + 1 < parts.size(); ++p) fn.qual += parts[p] + "::";
        fn.qual += parts.back();
        for (const auto& [b, e] : split_args(toks, i, close)) {
          fn.params.push_back(parse_param(toks, b, e));
        }
      }
      fn.returns_task = return_type_mentions_task(chain_begin);

      if (body != std::string::npos) {
        const std::size_t body_end = match_close(toks, body);
        if (body_end == std::string::npos) continue;
        fn.has_body = true;
        fn.body_begin = body;
        fn.body_end = body_end;
        analyze_body(fn);
        out.fns.push_back(std::move(fn));
        i = body;  // resume after the body head; nested lambdas were handled
        i = body_end;
      } else {
        out.fns.push_back(std::move(fn));
        i = close;
      }
    }
  }

  bool inside_lambda(const Function& fn, std::size_t tok) const {
    for (const Lambda& l : fn.lambdas) {
      if (l.body_begin != 0 && tok > l.body_begin && tok < l.body_end) return true;
    }
    return false;
  }

  void analyze_body(Function& fn) {
    find_lambdas(fn);

    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const std::string& t = toks[i].text;
      if (t == "co_await" && !inside_lambda(fn, i)) fn.awaits.push_back(i);
    }
    fn.is_coroutine = is_coroutine_range(fn.body_begin, fn.body_end) &&
                      [&] {  // a coroutine of its own, not only via nested lambdas
                        for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
                          const std::string& t = toks[i].text;
                          if ((t == "co_await" || t == "co_return" || t == "co_yield") &&
                              !inside_lambda(fn, i)) {
                            return true;
                          }
                        }
                        return false;
                      }();

    find_decls(fn);
  }

  void find_lambdas(Function& fn) {
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      if (toks[i].text != "[") continue;
      const Token& prev = toks[i - 1];
      // Subscripts follow a value; attributes are "[[".
      if (prev.kind == Token::Kind::ident || prev.kind == Token::Kind::number ||
          prev.kind == Token::Kind::str || prev.text == ")" || prev.text == "]") {
        continue;
      }
      if (i + 1 < fn.body_end && toks[i + 1].text == "[") {
        ++i;  // attribute: skip both brackets
        continue;
      }
      const std::size_t intro_close = match_close(toks, i);
      if (intro_close == std::string::npos) continue;

      Lambda l;
      l.intro = i;
      l.line = toks[i].line;
      for (std::size_t k = i + 1; k < intro_close; ++k) {
        l.has_captures = true;
        if (toks[k].text == "&") l.captures_ref = true;
        if (toks[k].text == "this") l.captures_this = true;
      }
      std::size_t j = intro_close + 1;
      if (j < fn.body_end && toks[j].text == "(") {
        const std::size_t c = match_close(toks, j);
        if (c == std::string::npos) continue;
        j = c + 1;
      }
      while (j < fn.body_end &&
             (toks[j].text == "mutable" || toks[j].text == "noexcept" ||
              toks[j].text == "constexpr" || toks[j].kind == Token::Kind::ident ||
              toks[j].text == "->" || toks[j].text == "::" || toks[j].text == "&" ||
              toks[j].text == "*")) {
        if (toks[j].text == "->") {
          ++j;
          continue;
        }
        if (toks[j].kind == Token::Kind::ident && j + 1 < fn.body_end &&
            toks[j + 1].text == "<") {
          const std::size_t c = skip_angles(toks, j + 1);
          if (c != std::string::npos) {
            j = c;
            continue;
          }
        }
        ++j;
      }
      if (j >= fn.body_end || toks[j].text != "{") continue;
      const std::size_t body_end = match_close(toks, j);
      if (body_end == std::string::npos) continue;
      l.body_begin = j;
      l.body_end = body_end;
      l.is_coroutine = is_coroutine_range(j, body_end);
      fn.lambdas.push_back(l);
      // Keep scanning inside for nested lambdas, but skip the intro itself.
    }
  }

  void find_decls(Function& fn) {
    bool stmt_start = true;
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const std::string& t = toks[i].text;
      if (t == ";" || t == "{" || t == "}") {
        stmt_start = true;
        continue;
      }
      if (!stmt_start) continue;
      stmt_start = false;
      if (toks[i].kind != Token::Kind::ident) continue;
      if (stmt_keywords().count(t) > 0 || control_keywords().count(t) > 0) continue;
      if (inside_lambda(fn, i)) continue;

      // Walk a type prefix: idents / :: / <...> / & / * / const / auto.
      std::size_t j = i;
      std::size_t name_tok = std::string::npos;
      bool saw_type = false;
      while (j < fn.body_end) {
        const Token& tk = toks[j];
        if (tk.kind == Token::Kind::ident && control_keywords().count(tk.text) == 0 &&
            stmt_keywords().count(tk.text) == 0) {
          name_tok = j;
          ++j;
          if (j < fn.body_end && toks[j].text == "<") {
            const std::size_t c = skip_angles(toks, j);
            if (c != std::string::npos) {
              j = c;
              saw_type = true;
              name_tok = std::string::npos;
              continue;
            }
          }
          if (j < fn.body_end &&
              (toks[j].text == "::" || toks[j].text == "&" || toks[j].text == "&&" ||
               toks[j].text == "*")) {
            if (toks[j].text == "::") ++j;
            else {
              while (j < fn.body_end &&
                     (toks[j].text == "&" || toks[j].text == "&&" || toks[j].text == "*")) {
                ++j;
              }
              saw_type = true;
              name_tok = std::string::npos;
            }
            continue;
          }
          if (j < fn.body_end && toks[j].kind == Token::Kind::ident) {
            saw_type = true;  // two adjacent identifiers: type then name
            continue;
          }
          break;
        }
        break;
      }
      if (name_tok == std::string::npos || j >= fn.body_end) continue;
      const std::string& after = toks[j].text;
      const bool auto_decl = toks[i].text == "auto" || toks[i].text == "const";
      if (!saw_type && !auto_decl) continue;
      if (name_tok == i) continue;  // single bare identifier

      Decl d;
      d.name = toks[name_tok].text;
      d.name_tok = name_tok;
      if (after == "=") {
        d.init_begin = j + 1;
        std::size_t k = j + 1;
        int depth = 0;
        while (k < fn.body_end) {
          const std::string& tt = toks[k].text;
          if (tt == "(" || tt == "{" || tt == "[") ++depth;
          else if (tt == ")" || tt == "}" || tt == "]") --depth;
          else if (tt == ";" && depth == 0) break;
          ++k;
        }
        d.init_end = k;
      } else if (after == "(" || after == "{") {
        const std::size_t c = match_close(toks, j);
        if (c == std::string::npos) continue;
        d.init_begin = j + 1;
        d.init_end = c;
      } else if (after != ";") {
        continue;
      }

      // Iterator-yielding initializer: <expr>.find(...) / .begin() / ...
      // Only at brace depth 0 — a brace in an initializer opens a lambda
      // body (or aggregate), whose inner lookups are not iterators bound to
      // this declaration.
      static const std::set<std::string> iter_calls = {
          "find",  "begin", "cbegin", "rbegin", "end",   "lower_bound",
          "upper_bound", "equal_range"};
      // `int v = it == m.end() ? -1 : it->second;` — a top-level comparison
      // or conditional means the declared value is a scalar, not the iterator.
      bool scalar_init = false;
      int pd = 0;
      for (std::size_t k = d.init_begin; k < d.init_end; ++k) {
        const std::string& tt = toks[k].text;
        if (tt == "(" || tt == "{" || tt == "[") ++pd;
        else if (tt == ")" || tt == "}" || tt == "]") --pd;
        else if (pd == 0 && (tt == "==" || tt == "!=" || tt == "?")) {
          scalar_init = true;
          break;
        }
      }
      if (scalar_init) {
        fn.decls.push_back(std::move(d));
        continue;
      }
      int brace = 0;
      for (std::size_t k = d.init_begin; k + 2 < d.init_end; ++k) {
        if (toks[k].text == "{") ++brace;
        if (toks[k].text == "}") --brace;
        if (brace > 0) continue;
        if ((toks[k].text == "." || toks[k].text == "->") &&
            toks[k + 1].kind == Token::Kind::ident && iter_calls.count(toks[k + 1].text) > 0 &&
            toks[k + 2].text == "(") {
          d.iterator_like = true;
          for (std::size_t b = d.init_begin; b < k; ++b) {
            if (toks[b].kind == Token::Kind::ident) d.container = toks[b].text;
          }
          break;
        }
      }
      fn.decls.push_back(std::move(d));
    }
  }
};

}  // namespace

FileModel build_model(const SourceFile& f) {
  Parser p(f);
  p.run();
  return p.out;
}

}  // namespace c4h::analyze
