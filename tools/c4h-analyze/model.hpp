// c4h-analyze source model — the "recursive-descent-lite" layer.
//
// From the flat token stream the model pass recovers just enough structure
// for dataflow rules to work with:
//
//   * functions (free, member, out-of-line) with qualified names, parameter
//     lists (name / reference / pointer / const flags), whether the body is
//     a coroutine (contains co_await / co_return / co_yield), and whether
//     the declared return type mentions Task;
//   * per-function local declarations with their initializer token ranges,
//     plus a flag for iterator-yielding initializers (find / begin /
//     lower_bound / ... on some container expression);
//   * lambdas nested in a body: capture list classification (by-ref,
//     by-value, `this`) and whether the lambda body is itself a coroutine;
//   * co_await positions in the body (excluding nested lambda bodies, which
//     suspend their own frame, not the enclosing one).
//
// The parser is deliberately heuristic: anything it cannot recognize it
// skips, so malformed or exotic code degrades to "not analyzed" rather than
// to a wrong answer. Rules therefore err toward false negatives, never
// toward crashing on real input.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tools/c4h-analyze/lexer.hpp"

namespace c4h::analyze {

struct Param {
  std::string name;   // empty for unnamed parameters
  bool is_ref = false;   // lvalue reference (&)
  bool is_rref = false;  // rvalue reference (&&)
  bool is_ptr = false;
  bool is_const = false;
};

struct Lambda {
  std::size_t intro = 0;       // token index of '['
  std::size_t body_begin = 0;  // token index of '{' (0 = no body found)
  std::size_t body_end = 0;    // token index of matching '}'
  bool has_captures = false;
  bool captures_ref = false;   // '&' default capture or '&name'
  bool captures_this = false;
  bool is_coroutine = false;
  int line = 0;
};

struct Decl {
  std::string name;
  std::size_t name_tok = 0;        // token index of the declared name
  std::size_t init_begin = 0;      // initializer token range [begin, end)
  std::size_t init_end = 0;
  bool iterator_like = false;      // initializer is <expr>.find(...) / .begin() / ...
  std::string container;           // last identifier before the iterator call
};

struct Function {
  std::string name;  // last component, e.g. "publish"
  std::string qual;  // qualified, e.g. "GeoFederation::publish"
  std::vector<Param> params;
  bool is_coroutine = false;   // body contains co_await/co_return/co_yield
  bool returns_task = false;   // declared return type mentions Task
  bool has_body = false;
  std::size_t body_begin = 0;  // token index of '{'
  std::size_t body_end = 0;    // token index of matching '}'
  int line = 0;
  std::vector<Decl> decls;
  std::vector<Lambda> lambdas;
  std::vector<std::size_t> awaits;  // co_await token indexes (own frame only)
};

struct FileModel {
  const SourceFile* file = nullptr;
  std::vector<Function> fns;
};

FileModel build_model(const SourceFile& f);

/// Index one past a balanced "<...>" starting at toks[i] == "<", or npos.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t i);

/// Index of the ")" / "}" matching the opener at toks[i], or npos.
std::size_t match_close(const std::vector<Token>& toks, std::size_t i);

/// Token ranges of the top-level comma-separated parts in (open, close).
std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& toks, std::size_t open, std::size_t close);

/// Parses one parameter declaration out of [begin, end).
Param parse_param(const std::vector<Token>& toks, std::size_t begin, std::size_t end);

}  // namespace c4h::analyze
