#include "tools/c4h-analyze/lexer.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <utility>

namespace c4h::analyze {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Parses "c4h-analyze: allow(A3,D1)" occurrences out of a comment. Comment-only
// lines are collected into `pending` and attached to the next code line after
// tokenization (the lexer does not yet know where the code is).
void parse_allow(const std::string& comment, int line, bool comment_only, SourceFile& f,
                 std::vector<std::pair<int, std::string>>& pending) {
  const std::string tag = "c4h-analyze: allow(";
  std::size_t pos = 0;
  while ((pos = comment.find(tag, pos)) != std::string::npos) {
    pos += tag.size();
    const std::size_t close = comment.find(')', pos);
    if (close == std::string::npos) return;
    std::stringstream list(comment.substr(pos, close - pos));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(),
                                [](unsigned char c) { return std::isspace(c); }),
                 rule.end());
      if (rule.empty()) continue;
      f.allow[line].insert(rule);
      if (comment_only) pending.emplace_back(line, rule);
    }
    pos = close;
  }
}

void tokenize(SourceFile& f) {
  enum class St { code, line_comment, block_comment, str, chr, raw_str, pp };
  St st = St::code;
  std::string comment, raw_delim;
  bool line_has_code = false;
  int comment_line = 0;
  std::vector<std::pair<int, std::string>> pending_allow;

  auto flush_comment = [&](int line) {
    if (!comment.empty()) parse_allow(comment, line, !line_has_code, f, pending_allow);
    comment.clear();
  };

  for (int ln = 0; ln < static_cast<int>(f.raw_lines.size()); ++ln) {
    const std::string& s = f.raw_lines[ln];
    const int line = ln + 1;
    if (st == St::line_comment) {
      flush_comment(comment_line);
      st = St::code;
    }
    if (st == St::pp) {  // previous directive line ended with a backslash
      if (s.empty() || s.back() != '\\') st = St::code;
      continue;
    }
    if (st == St::code) {
      line_has_code = false;
      const std::size_t first = s.find_first_not_of(" \t");
      if (first != std::string::npos && s[first] == '#') {
        if (!s.empty() && s.back() == '\\') st = St::pp;
        continue;
      }
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      const char n = i + 1 < s.size() ? s[i + 1] : '\0';
      switch (st) {
        case St::pp:
          break;
        case St::line_comment:
          comment += c;
          break;
        case St::block_comment:
          if (c == '*' && n == '/') {
            ++i;
            flush_comment(comment_line);
            st = St::code;
          } else {
            comment += c;
          }
          break;
        case St::str:
          if (c == '\\') ++i;
          else if (c == '"') st = St::code;
          break;
        case St::chr:
          if (c == '\\') ++i;
          else if (c == '\'') st = St::code;
          break;
        case St::raw_str:
          if (c == ')' && s.compare(i + 1, raw_delim.size() + 1, raw_delim + "\"") == 0) {
            i += raw_delim.size() + 1;
            st = St::code;
          }
          break;
        case St::code: {
          if (c == '/' && n == '/') {
            st = St::line_comment;
            comment_line = line;
            ++i;
            break;
          }
          if (c == '/' && n == '*') {
            st = St::block_comment;
            comment_line = line;
            ++i;
            break;
          }
          if (c == 'R' && n == '"' && (i == 0 || !ident_char(s[i - 1]))) {
            const std::size_t open = s.find('(', i + 2);
            if (open != std::string::npos) {
              raw_delim = s.substr(i + 2, open - (i + 2));
              st = St::raw_str;
              i = open;
              line_has_code = true;
              f.toks.push_back({Token::Kind::str, "<str>", line});
              break;
            }
          }
          if (c == '"') {
            st = St::str;
            line_has_code = true;
            f.toks.push_back({Token::Kind::str, "<str>", line});
            break;
          }
          if (c == '\'') {
            // Digit separators (1'000'000) are not character literals.
            if (i > 0 && std::isdigit(static_cast<unsigned char>(s[i - 1])) && ident_char(n)) break;
            st = St::chr;
            line_has_code = true;
            f.toks.push_back({Token::Kind::str, "<chr>", line});
            break;
          }
          if (std::isspace(static_cast<unsigned char>(c))) break;
          line_has_code = true;
          if (ident_char(c) && !std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size() && ident_char(s[j])) ++j;
            f.toks.push_back({Token::Kind::ident, s.substr(i, j - i), line});
            i = j - 1;
            break;
          }
          if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < s.size() && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
            f.toks.push_back({Token::Kind::number, s.substr(i, j - i), line});
            i = j - 1;
            break;
          }
          // ">>" is deliberately absent: it usually closes two template
          // argument lists (Task<Result<T>>), so it must lex as two ">".
          static const char* two[] = {"::", "->", "&&", "||", "==", "!=",
                                      "<=", ">=", "+=", "-=", "<<"};
          std::string t(1, c);
          for (const char* op : two) {
            if (c == op[0] && n == op[1]) {
              t = op;
              ++i;
              break;
            }
          }
          f.toks.push_back({Token::Kind::punct, t, line});
          break;
        }
      }
    }
    if (st == St::line_comment) continue;  // flushed at the top of the next line
    if (st == St::str || st == St::chr) st = St::code;  // unterminated: resync
  }
  flush_comment(comment_line);

  // Attach comment-only allows to the next line holding code.
  std::set<int> code_lines;
  for (const Token& t : f.toks) code_lines.insert(t.line);
  for (const auto& [line, rule] : pending_allow) {
    const auto next = code_lines.upper_bound(line);
    if (next != code_lines.end()) f.allow[*next].insert(rule);
  }
}

bool has_suffix(const std::string& s, const std::string& suf) {
  return s.size() >= suf.size() &&
         s.compare(s.size() - suf.size(), suf.size(), suf) == 0;
}

}  // namespace

bool load_file(const std::string& path, SourceFile& f) {
  std::ifstream in(path);
  if (!in) return false;
  f.path = path;
  f.is_header = has_suffix(path, ".hpp") || has_suffix(path, ".h");
  std::string line;
  while (std::getline(in, line)) f.raw_lines.push_back(line);
  tokenize(f);
  return true;
}

bool allowed(const SourceFile& f, int line, const std::string& rule) {
  const auto it = f.allow.find(line);
  return it != f.allow.end() && it->second.count(rule) > 0;
}

}  // namespace c4h::analyze
