// Media conversion (§II): a household media library lives on whichever
// device ripped it; mobile devices request mobile-format versions. VStore++
// fetch+process transparently transcodes — at the requester if it can, at
// the owner, or at the desktop found by dynamic resource discovery — and
// the privacy policy keeps personal audio home while shareable video can
// ride in the cloud.
//
//   $ ./examples/media_conversion
#include <cstdio>

#include "src/vstore/home_cloud.hpp"

using namespace c4h;
using sim::Task;

int main() {
  vstore::HomeCloud home;
  home.bootstrap();

  auto x264 = services::x264_profile();
  home.registry().add_profile(x264);
  // Only the desktop is beefy enough to be *registered* for transcoding.
  home.desktop().deploy_service(x264);

  struct Item {
    const char* name;
    const char* type;
    Bytes size;
    std::size_t ripped_on;  // which device holds it
  };
  const Item library[] = {
      {"library/wedding.avi", "avi", 48_MB, 1},
      {"library/concert.avi", "avi", 32_MB, 2},
      {"library/roadtrip.avi", "avi", 16_MB, 4},
      {"library/mixtape.mp3", "mp3", 12_MB, 1},
      {"library/podcast.mp3", "mp3", 6_MB, 3},
  };

  home.run([&library](vstore::HomeCloud& h) -> Task<> {
    (void)co_await h.desktop().publish_services();
    const auto xp = *h.registry().profile("x264-transcode", 3);

    // Rip phase: each device stores its media under the privacy policy
    // (.mp3 stays home; shareable video may go to the cloud).
    vstore::StoreOptions opts;
    opts.policy = vstore::StoragePolicy::privacy();
    for (const auto& item : library) {
      auto& owner = h.node(item.ripped_on);
      vstore::ObjectMeta m;
      m.name = item.name;
      m.type = item.type;
      m.size = item.size;
      (void)co_await owner.create_object(m);
      auto stored = co_await owner.store_object(m.name, opts);
      if (stored.ok()) {
        std::printf("%-22s %5.0f MB ripped on %-10s → %s\n", item.name, to_mib(item.size),
                    owner.name().c_str(),
                    stored->location.is_cloud() ? stored->location.url.c_str() : "home");
      }
    }
    std::printf("\n");

    // Consumption phase: the mobile device (netbook-0) wants everything in
    // mobile format. Videos go through fetch+process; audio is fetched raw.
    auto& mobile = h.node(0);
    for (const auto& item : library) {
      if (std::string_view{item.type} == "avi") {
        const auto t0 = h.sim().now();
        auto res = co_await mobile.fetch_process(item.name, xp);
        if (!res.ok()) {
          std::printf("%-22s conversion failed: %s\n", item.name, res.error().message.c_str());
          continue;
        }
        const char* site =
            res->site.kind == vstore::ExecSite::Kind::ec2
                ? "EC2"
                : (res->site.node == h.desktop().chimera().id() ? "desktop" : "elsewhere");
        std::printf("%-22s → %4.0f MB .mp4 on %-8s in %6.1f s (move %.1f s, exec %.1f s)\n",
                    item.name, to_mib(res->output), site, to_seconds(h.sim().now() - t0),
                    to_seconds(res->move), to_seconds(res->exec));
      } else {
        auto res = co_await mobile.fetch_object(item.name);
        if (res.ok()) {
          std::printf("%-22s → fetched raw (%s) in %6.2f s\n", item.name,
                      res->from_cloud ? "from S3" : "from home", to_seconds(res->total));
        }
      }
    }
  }(home));

  std::printf("\nlibrary size in cloud: %.0f MB across %zu objects\n",
              to_mib(home.s3().stored_bytes()), home.s3().object_count());
  return 0;
}
