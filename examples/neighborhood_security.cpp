// Neighborhood security (§VII): "multiple Cloud4Home systems interact to
// provide effective security services for entire neighborhoods."
//
// Three homes run their own surveillance pipelines. When a home's camera
// flags a suspicious event, it publishes the snapshot to the neighborhood
// federation; the other homes pull it and run recognition against their
// own galleries ("have we seen this person?"), raising a neighborhood-wide
// alert when enough homes confirm.
//
//   $ ./examples/neighborhood_security
#include <cstdio>

#include "src/common/stats.hpp"
#include "src/federation/federation.hpp"

using namespace c4h;
using sim::Task;
using vstore::HomeCloud;
using vstore::HomeCloudConfig;
using vstore::Neighborhood;

namespace {

HomeCloudConfig home_cfg(const std::string& name) {
  HomeCloudConfig cfg;
  cfg.home_name = name;
  cfg.netbooks = 2;
  cfg.with_desktop = true;
  return cfg;
}

struct WatchStats {
  int events = 0;
  int confirmations = 0;
  int neighborhood_alerts = 0;
  Samples end_to_end_s;
};

}  // namespace

int main() {
  Neighborhood hood;
  std::vector<std::unique_ptr<HomeCloud>> homes;
  for (const char* name : {"maple-st-12", "maple-st-14", "maple-st-16"}) {
    homes.push_back(std::make_unique<HomeCloud>(hood, home_cfg(name)));
  }
  for (auto& h : homes) h->bootstrap();

  federation::Federation fed{hood};

  // Every home can run detection + recognition on its desktop.
  auto fdet = services::face_detect_profile();
  auto frec = services::face_recognize_profile(60_MB);
  for (auto& h : homes) {
    h->registry().add_profile(fdet);
    h->registry().add_profile(frec);
    h->desktop().deploy_service(fdet);
    h->desktop().deploy_service(frec);
  }

  WatchStats stats;
  hood.run([&](Neighborhood& n) -> Task<> {
    for (auto& h : homes) {
      (void)co_await h->desktop().publish_services();
    }
    const auto fd = *homes[0]->registry().profile("face-detect", 1);
    const auto fr = *homes[0]->registry().profile("face-recognize", 2);

    Rng rng{77};
    for (int event = 0; event < 6; ++event) {
      co_await n.sim().delay(seconds(10));
      const std::size_t src = rng.below(homes.size());
      HomeCloud& origin = *homes[src];
      const auto t0 = n.sim().now();
      ++stats.events;

      // 1. The origin home captures and screens the snapshot locally.
      const std::string snap = origin.config().home_name + "/event-" +
                               std::to_string(event) + ".jpg";
      vstore::ObjectMeta m;
      m.name = snap;
      m.type = "jpg";
      m.size = 512_KB + rng.below(512) * 1_KB;
      m.tags = {"surveillance"};
      (void)co_await origin.node(0).create_object(m);
      auto stored = co_await origin.node(0).store_object(snap);
      if (!stored.ok()) continue;
      auto det = co_await origin.node(0).process(snap, fd);
      if (!det.ok()) continue;

      // 2. Publish to the neighborhood and let the other homes check it
      //    against their galleries.
      (void)co_await fed.publish(origin, origin.node(0), snap);
      int confirms = 0;
      for (auto& h : homes) {
        if (h.get() == &origin) continue;
        auto pulled = co_await fed.fetch(*h, h->node(0), snap);
        if (!pulled.ok()) continue;
        // The pulled snapshot lands in the neighbour's home cloud; store it
        // so the pipeline can reference it, then recognize.
        vstore::ObjectMeta copy;
        copy.name = h->config().home_name + "/pulled-" + std::to_string(event) + ".jpg";
        copy.type = "jpg";
        copy.size = pulled->size;
        (void)co_await h->node(0).create_object(copy);
        (void)co_await h->node(0).store_object(copy.name);
        auto rec = co_await h->node(0).process(copy.name, fr);
        if (rec.ok()) {
          ++confirms;  // this home's gallery produced a match id
        }
      }
      stats.confirmations += confirms;
      if (confirms >= 2) ++stats.neighborhood_alerts;
      stats.end_to_end_s.add(to_seconds(n.sim().now() - t0));
    }
  }(hood));

  std::printf("neighborhood security — 3 homes on one street, %.0f simulated s\n",
              to_seconds(hood.sim().now()));
  std::printf("  %d events screened; %d neighbour confirmations; %d street-wide alerts\n",
              stats.events, stats.confirmations, stats.neighborhood_alerts);
  std::printf("  event → street-wide decision: mean %.1f s, max %.1f s\n",
              stats.end_to_end_s.mean(), stats.end_to_end_s.max());
  std::printf("  federation: %zu directory entries, %llu cross-home pulls, %.1f MB exchanged\n",
              fed.directory_size(),
              static_cast<unsigned long long>(fed.stats().cross_home_fetches),
              fed.stats().bytes_exchanged / (1024.0 * 1024.0));
  return 0;
}
