// Content sharing under churn (§II "content sharing in college dorms or
// apartment homes"): devices join and leave while residents keep publishing
// and fetching shared media. Demonstrates dynamic overlay reconfiguration,
// key redistribution on graceful leaves, replica-based survival of crashes,
// and the metadata path caches soaking up popular lookups.
//
//   $ ./examples/content_sharing
#include <cstdio>

#include "src/common/stats.hpp"
#include "src/vstore/home_cloud.hpp"

using namespace c4h;
using sim::Task;

namespace {

Task<> resident(vstore::HomeCloud& h, std::size_t device, int rounds, int& ok, int& failed) {
  Rng rng{1000 + device};
  for (int r = 0; r < rounds; ++r) {
    co_await h.sim().delay(seconds(1) + milliseconds(static_cast<long>(rng.below(2000))));
    auto& node = h.node(device);
    if (!node.online()) co_return;  // our device left the building

    if (rng.chance(0.4)) {
      // Publish a new clip.
      vstore::ObjectMeta m;
      m.name = "shared/d" + std::to_string(device) + "-r" + std::to_string(r) + ".mp4";
      m.type = "mp4";
      m.size = 2_MB + rng.below(6) * 1_MB;
      (void)co_await node.create_object(m);
      auto res = co_await node.store_object(m.name);
      (res.ok() ? ok : failed) += 1;
    } else {
      // Fetch something someone published (popular items more often).
      const auto dev = rng.below(h.node_count());
      const auto round = rng.zipf(static_cast<std::uint64_t>(r) + 1, 1.0);
      const std::string name =
          "shared/d" + std::to_string(dev) + "-r" + std::to_string(round) + ".mp4";
      auto res = co_await node.fetch_object(name);
      if (res.ok()) {
        ++ok;
      } else if (res.code() != Errc::not_found && res.code() != Errc::unavailable) {
        ++failed;  // not_found/unavailable are expected under churn
      }
    }
  }
}

}  // namespace

int main() {
  vstore::HomeCloudConfig cfg;
  cfg.netbooks = 7;  // a dorm floor
  cfg.kv.replication = 2;
  cfg.start_stabilization = true;
  cfg.overlay.stabilize_period = seconds(1);
  vstore::HomeCloud dorm{cfg};
  dorm.bootstrap();

  int ok = 0, failed = 0;
  dorm.run([&ok, &failed](vstore::HomeCloud& h) -> Task<> {
    // Residents on 6 devices; devices 2 and 5 will churn.
    std::vector<sim::Task<>> tasks;
    for (std::size_t d = 0; d < 6; ++d) {
      tasks.push_back(resident(h, d, /*rounds=*/20, ok, failed));
    }
    tasks.push_back([](vstore::HomeCloud& hh) -> Task<> {
      // Device 2 leaves politely mid-way (keys redistributed)...
      co_await hh.sim().delay(seconds(20));
      co_await hh.overlay().leave(hh.node(2).chimera());
      // ...device 5 just crashes (heartbeats detect it, replicas repair).
      co_await hh.sim().delay(seconds(10));
      hh.overlay().crash(hh.node(5).chimera());
    }(h));
    co_await sim::when_all(h.sim(), std::move(tasks));
  }(dorm));

  const auto& ostats = dorm.overlay().stats();
  const auto& kstats = dorm.kv().stats();
  std::printf("content sharing under churn — %.0f simulated seconds\n",
              to_seconds(dorm.sim().now()));
  std::printf("  operations: %d succeeded, %d hard failures\n", ok, failed);
  std::printf("  overlay: %llu routes, %llu maintenance msgs, %llu failures detected\n",
              static_cast<unsigned long long>(ostats.routes),
              static_cast<unsigned long long>(ostats.maintenance_messages),
              static_cast<unsigned long long>(ostats.failures_detected));
  std::printf("  metadata: %llu puts / %llu gets, %llu served locally, %llu by path caches\n",
              static_cast<unsigned long long>(kstats.puts),
              static_cast<unsigned long long>(kstats.gets),
              static_cast<unsigned long long>(kstats.local_hits),
              static_cast<unsigned long long>(kstats.cache_hits));
  std::printf("  redistribution: %llu msgs (leave handoff + failure repair)\n",
              static_cast<unsigned long long>(kstats.redistribution_msgs));
  return failed == 0 ? 0 : 1;
}
