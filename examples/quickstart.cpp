// Quickstart: build the paper's home cloud (5 Atom netbooks + a desktop,
// LAN + WAN + S3 + EC2), store an object, fetch it from another device, and
// run a processing service on it.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "src/vstore/home_cloud.hpp"

using namespace c4h;
using sim::Task;

int main() {
  // 1. Assemble the home cloud. The default config is the ICDCS'11 testbed.
  vstore::HomeCloudConfig cfg;
  vstore::HomeCloud home{cfg};
  home.bootstrap();
  std::printf("home cloud up: %zu devices + S3 + EC2\n", home.node_count());

  // 2. Deploy a service (x264 media conversion) on the desktop and publish
  //    it in the service registry.
  auto x264 = services::x264_profile();
  home.registry().add_profile(x264);
  home.desktop().deploy_service(x264);

  home.run([](vstore::HomeCloud& h) -> Task<> {
    (void)co_await h.desktop().publish_services();

    // 3. A netbook creates and stores an object. CreateObject maps a file
    //    to an object; StoreObject moves it out of the guest VM and places
    //    it per the storage policy (local mandatory bin by default).
    auto& camera = h.node(0);
    vstore::ObjectMeta video;
    video.name = "clips/holiday.avi";
    video.type = "avi";
    video.size = 24_MB;
    (void)co_await camera.create_object(video);
    auto stored = co_await camera.store_object(video.name);
    if (!stored.ok()) {
      std::printf("store failed: %s\n", stored.error().message.c_str());
      co_return;
    }
    std::printf("stored %s (%0.f MB) — placement took %.0f ms, metadata %.1f ms\n",
                video.name.c_str(), to_mib(video.size), to_milliseconds(stored->placement),
                to_milliseconds(stored->metadata));

    // 4. Another device fetches it. Location comes from the DHT; the bytes
    //    move over the LAN and into the requesting VM via XenSocket.
    auto& tablet = h.node(3);
    auto fetched = co_await tablet.fetch_object(video.name);
    if (fetched.ok()) {
      std::printf("fetched from %s: total %.0f ms (DHT %.1f ms, inter-node %.0f ms, "
                  "inter-domain %.0f ms)\n",
                  fetched->local ? "local disk" : (fetched->from_cloud ? "S3" : "another node"),
                  to_milliseconds(fetched->total), to_milliseconds(fetched->dht_lookup),
                  to_milliseconds(fetched->inter_node), to_milliseconds(fetched->inter_domain));
    }

    // 5. Convert the video for a mobile screen. chimeraGetDecision picks the
    //    execution site using the monitored resource records — here, the
    //    desktop (idle, 4 cores) beats converting on the netbook.
    const auto xp = *h.registry().profile("x264-transcode", 3);
    auto converted = co_await tablet.process(video.name, xp);
    if (converted.ok()) {
      const bool on_desktop = converted->site.kind == vstore::ExecSite::Kind::home_node &&
                              converted->site.node == h.desktop().chimera().id();
      std::printf("converted on %s: exec %.1f s, move %.2f s, decision %.0f ms → %.0f MB .mp4\n",
                  on_desktop ? "the desktop" : "another device", to_seconds(converted->exec),
                  to_seconds(converted->move), to_milliseconds(converted->decision),
                  to_mib(converted->output));
    }
  }(home));

  std::printf("done at simulated t=%.1f s\n", to_seconds(home.sim().now()));
  return 0;
}
