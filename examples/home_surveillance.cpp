// Home surveillance (§II): a camera node captures frames, a size-threshold
// storage policy keeps small frames home and spills large ones to the
// cloud, and every frame runs the face-detection → face-recognition
// pipeline wherever the decision engine says — home desktop for cheap
// frames, EC2 when the home is busy. An "alert" is the pipeline completing.
//
//   $ ./examples/home_surveillance
#include <cstdio>

#include "src/common/stats.hpp"
#include "src/vstore/home_cloud.hpp"

using namespace c4h;
using sim::Task;

namespace {

struct AlertStats {
  Samples latency_s;
  int home_runs = 0;
  int cloud_runs = 0;
  int cloud_stored = 0;
};

Task<> camera_loop(vstore::HomeCloud& home, AlertStats& stats, int frames) {
  auto& camera = home.node(0);
  const auto fdet = *home.registry().profile("face-detect", 1);
  const auto frec = *home.registry().profile("face-recognize", 2);

  Rng rng{2026};
  for (int i = 0; i < frames; ++i) {
    // Motion events arrive every few seconds; frame size depends on scene
    // complexity.
    co_await home.sim().delay(seconds(2) + milliseconds(static_cast<long>(rng.below(3000))));
    const Bytes size = 256_KB + rng.below(1536) * 1_KB;  // 0.25 - 1.75 MB

    vstore::ObjectMeta frame;
    frame.name = "cam0/frame-" + std::to_string(i) + ".jpg";
    frame.type = "jpg";
    frame.size = size;
    frame.tags = {"surveillance"};

    // The paper's surveillance policy: store images below a size threshold
    // on a home node, larger ones in the remote cloud.
    vstore::StoreOptions opts;
    opts.policy = vstore::StoragePolicy::size_threshold(1_MB);

    (void)co_await camera.create_object(frame);
    auto stored = co_await camera.store_object(frame.name, opts);
    if (!stored.ok()) continue;
    stats.cloud_stored += stored->location.is_cloud();

    const auto t0 = home.sim().now();
    std::vector<services::ServiceProfile> pipeline{fdet, frec};
    auto alert = co_await camera.process_pipeline(frame.name, pipeline);
    if (!alert.ok()) continue;

    stats.latency_s.add(to_seconds(home.sim().now() - t0));
    if (alert->site.kind == vstore::ExecSite::Kind::ec2) {
      ++stats.cloud_runs;
    } else {
      ++stats.home_runs;
    }
  }
}

}  // namespace

int main() {
  vstore::HomeCloud home;
  home.bootstrap();

  auto fdet = services::face_detect_profile();
  auto frec = services::face_recognize_profile(60_MB);
  home.registry().add_profile(fdet);
  home.registry().add_profile(frec);
  // The desktop and the camera's own netbook can run the pipeline; so can
  // EC2 (with the public training gallery).
  home.node(0).deploy_service(fdet);
  home.node(0).deploy_service(frec);
  home.desktop().deploy_service(fdet);
  home.desktop().deploy_service(frec);
  home.deploy_service_in_cloud(fdet);
  home.deploy_service_in_cloud(frec);

  AlertStats stats;
  home.run([&stats](vstore::HomeCloud& h) -> Task<> {
    (void)co_await h.node(0).publish_services();
    (void)co_await h.desktop().publish_services();
    co_await camera_loop(h, stats, /*frames=*/30);
  }(home));

  std::printf("home surveillance: %zu frames analyzed over %.0f simulated seconds\n",
              stats.latency_s.count(), to_seconds(home.sim().now()));
  std::printf("  alert latency: mean %.2f s, p95 %.2f s, max %.2f s\n", stats.latency_s.mean(),
              stats.latency_s.percentile(95), stats.latency_s.max());
  std::printf("  pipeline ran at home %d times, on EC2 %d times\n", stats.home_runs,
              stats.cloud_runs);
  std::printf("  %d large frames spilled to S3 by the size policy\n", stats.cloud_stored);
  return 0;
}
